"""Tests for the staged transplant pipeline and the mechanism policy.

The pipeline is the PR that removed the drift between three cost paths
(cluster executor, fleet controller, orchestrator policy), so these
tests are mostly about *equality*: the same floats must come out of
every layer, and the default campaign's artifacts must stay
byte-identical to the pre-refactor goldens.
"""

import json
import os

import pytest

from repro.cluster.executor import PlanExecutor, cluster_link_rate
from repro.cluster.model import build_paper_cluster
from repro.cluster.btrplace import BtrPlacePlanner
from repro.core.mechanisms import (
    WORKLOAD_SLO_S,
    MechanismPolicy,
    VMProfile,
    decide_fleet,
    mechanism_mix,
)
from repro.core.pipeline import (
    STAGE_ORDER,
    EvacuationSpec,
    InPlacePipeline,
    MigrationPipeline,
    Stage,
    StagePlan,
    TransplantPipelines,
    VerifySpec,
    fabric_link_rate,
)
from repro.core.timings import DEFAULT_COST_MODEL
from repro.core.transplant import HyperTP
from repro.errors import FleetError, TransplantError
from repro.fleet import FleetConfig, FleetController
from repro.hw.machine import CLUSTER_NODE_SPEC
from repro.hypervisors.base import HypervisorKind
from repro.sim.clock import SimClock

GIB = 1024 ** 3
GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")


def read_golden(name):
    with open(os.path.join(GOLDEN_DIR, name), "rb") as handle:
        return handle.read()


# -- stage plans ---------------------------------------------------------------


class TestStagePlan:
    def test_stages_follow_protocol_order(self):
        pipelines = TransplantPipelines()
        for plan in (
            pipelines.inplace(HypervisorKind.KVM).plan_host("h", 10, 40 * GIB),
            pipelines.migration(HypervisorKind.KVM).plan_vm(
                "vm", 4 * GIB, 1 << 20),
        ):
            seen = [cost.stage for cost in plan.stages]
            assert seen == list(STAGE_ORDER)

    def test_out_of_order_stages_rejected(self):
        good = TransplantPipelines().inplace(
            HypervisorKind.KVM).plan_host("h", 2, 8 * GIB)
        with pytest.raises(TransplantError, match="protocol order"):
            StagePlan(
                mechanism="inplace", subject="h",
                stages=tuple(reversed(good.stages)),
                total_s=good.total_s, execute_s=good.execute_s,
                downtime_s=good.downtime_s,
            )

    def test_total_must_reassociate_stage_sum(self):
        good = TransplantPipelines().inplace(
            HypervisorKind.KVM).plan_host("h", 2, 8 * GIB)
        with pytest.raises(TransplantError, match="re-association"):
            StagePlan(
                mechanism="inplace", subject="h", stages=good.stages,
                total_s=good.total_s * 2, execute_s=good.execute_s,
                downtime_s=good.downtime_s,
            )

    def test_inplace_downtime_is_translate_transfer_restore(self):
        plan = TransplantPipelines().inplace(
            HypervisorKind.KVM).plan_host("h", 10, 40 * GIB)
        downtime_stages = [c.stage for c in plan.stages if c.downtime]
        assert downtime_stages == [Stage.TRANSLATE, Stage.TRANSFER,
                                   Stage.RESTORE]
        assert plan.downtime_s < plan.execute_s  # capture rides outside

    def test_migration_downtime_is_stop_and_copy(self):
        plan = TransplantPipelines().migration(
            HypervisorKind.KVM).plan_vm("vm", 4 * GIB, 48 << 20)
        downtime_stages = [c.stage for c in plan.stages if c.downtime]
        assert downtime_stages == [Stage.TRANSLATE, Stage.TRANSFER,
                                   Stage.RESTORE]
        assert plan.stage_s(Stage.TRANSLATE) == 0.0  # planner: no proxy term
        charged = MigrationPipeline(
            fabric_link_rate(), charge_proxy=True,
        ).plan_vm("vm", 4 * GIB, 48 << 20)
        assert charged.stage_s(Stage.TRANSLATE) == pytest.approx(
            2 * DEFAULT_COST_MODEL.proxy_translate_s)

    def test_verify_spec_charged_per_vm(self):
        pipelines = TransplantPipelines(verify=VerifySpec(0.01, 0.002))
        plan = pipelines.inplace(HypervisorKind.KVM).plan_host(
            "h", 10, 40 * GIB)
        assert plan.stage_s(Stage.VERIFY) == pytest.approx(
            0.01 + 0.002 * 10)
        assert plan.total_s == pytest.approx(
            plan.execute_s + plan.stage_s(Stage.VERIFY))

    def test_spans_cover_stage_durations(self):
        plan = TransplantPipelines().migration(
            HypervisorKind.KVM).plan_vm("vm", 4 * GIB, 48 << 20)
        spans = plan.spans(100.0, track="t")
        assert spans  # non-empty stages rendered
        assert all(s.start_s >= 100.0 for s in spans)
        total = sum(s.end_s - s.start_s for s in spans)
        assert total == pytest.approx(plan.total_s, rel=1e-9)
        assert {s.category for s in spans} <= {"stage", "downtime"}


# -- executor parity -----------------------------------------------------------


class TestExecutorParity:
    def test_executor_times_equal_hypertp_upgrade_host(self):
        """Cluster per-action times are HyperTP.upgrade_host's floats."""
        executor = PlanExecutor()
        hypertp = HyperTP()
        cluster = build_paper_cluster(hosts=10, vms_per_host=10,
                                      inplace_fraction=0.8, seed=42)
        plan = BtrPlacePlanner(cluster, group_size=2).plan(apply=True)
        for group in plan.groups:
            for action in group.upgrades:
                host_plan = hypertp.upgrade_host(
                    action.node_name, executor.target_kind,
                    vm_count=action.vm_count,
                    total_memory_bytes=action.total_memory_bytes,
                )
                assert (executor.upgrade_time_s(action)
                        == host_plan.inplace.total_s)
            for action in group.migrations:
                host_plan = hypertp.upgrade_host(
                    action.source, executor.target_kind,
                    vm_count=0, total_memory_bytes=0,
                    evacuations=[EvacuationSpec(
                        action.vm_name, action.memory_bytes,
                        action.workload.dirty_rate_bytes_s,
                    )],
                )
                assert (executor.migration_time_s(action)
                        == host_plan.evacuations[0].total_s)

    def test_cluster_link_rate_is_fabric_link_rate(self):
        assert cluster_link_rate() == fabric_link_rate()
        assert cluster_link_rate(CLUSTER_NODE_SPEC) == fabric_link_rate(
            CLUSTER_NODE_SPEC)


# -- fleet/core parity (acceptance criterion) ----------------------------------


def transition_times(controller, host):
    """state -> time of the host's first transition into it."""
    times = {}
    for t in controller.trace.transitions:
        if t.host == host and t.target.value not in times:
            times[t.target.value] = t.time_s
    return times


class TestFleetParity:
    @pytest.mark.parametrize("config_kwargs", [
        dict(hosts=10, vms_per_host=10, inplace_fraction=0.8, seed=42),
        dict(hosts=10, vms_per_host=10, inplace_fraction=0.0, seed=42,
             sequential_groups=True, concurrency=None),
        dict(hosts=6, vms_per_host=4, inplace_fraction=0.5, seed=11,
             mechanism="auto"),
    ])
    def test_fleet_durations_equal_hypertp_upgrade_host(self, config_kwargs):
        """Per-host fleet durations ARE HyperTP.upgrade_host's floats.

        Proved two ways: the stage plans the campaign charged are
        float-equal to independently composed ``upgrade_host`` plans,
        and the simulated TRANSPLANTING->VERIFYING->DONE timestamps
        advanced by exactly those floats.
        """
        config = FleetConfig(**config_kwargs)
        controller = FleetController(config)
        controller.run()
        hypertp = HyperTP()
        verify = VerifySpec(config.verify_fixed_s, config.verify_per_vm_s)
        for hp in controller.host_plans:
            reference = hypertp.upgrade_host(
                hp.name, controller.target_kind,
                vm_count=hp.upgrade.vm_count,
                total_memory_bytes=hp.upgrade.total_memory_bytes,
                evacuations=[
                    EvacuationSpec(action.vm_name, action.memory_bytes,
                                   action.workload.dirty_rate_bytes_s)
                    for action, _, _ in hp.evacuations
                ],
                verify=verify,
            )
            # Exact float equality, not approx: one cost path.
            assert hp.plan.total_s == reference.inplace.total_s
            assert hp.plan.execute_s == reference.execute_s
            assert hp.plan.stage_s(Stage.VERIFY) == reference.verify_s
            for (_, _, plan), expected in zip(hp.evacuations,
                                              reference.evacuations):
                assert plan.total_s == expected.total_s
            times = transition_times(controller, hp.name)
            start = times["transplanting"]
            assert times["verifying"] == start + reference.execute_s
            assert times["done"] == (times["verifying"]
                                     + reference.verify_s)

    def test_degenerate_fleet_pinned_against_both_references(self):
        """Satellite: the sequential fleet matches UpgradeCampaign within
        1% AND HyperTP.upgrade_host exactly (the reconciled drift)."""
        from repro.cluster.upgrade import UpgradeCampaign

        reference = UpgradeCampaign(hosts=10, vms_per_host=10,
                                    group_size=2, seed=42).run(0.8)
        config = FleetConfig(hosts=10, vms_per_host=10,
                             inplace_fraction=0.8, group_size=2, seed=42,
                             sequential_groups=True, concurrency=None)
        controller = FleetController(config)
        metrics = controller.run()
        assert metrics.done_hosts == 10
        assert metrics.migrations_executed == reference.migration_count == 31
        assert metrics.fleet_window_s == pytest.approx(reference.total_s,
                                                       rel=0.01)
        # Pinned: the exact drift between the fleet and Fig. 13 is the
        # per-host verify stage, nothing else.  Every per-host duration
        # matches HyperTP exactly (asserted via the executor, which the
        # parity test above ties to upgrade_host).
        executor = PlanExecutor()
        for hp in controller.host_plans:
            assert hp.plan.execute_s == executor.upgrade_plan(
                hp.upgrade).total_s
            for action, _, plan in hp.evacuations:
                assert plan.total_s == executor.migration_time_s(action)


# -- golden byte-identity (acceptance criterion) -------------------------------


class TestGoldenByteIdentity:
    def test_inplace_only_campaign_matches_pre_refactor_goldens(self,
                                                                tmp_path):
        """Metrics JSON, Perfetto trace and journal are byte-identical to
        artifacts captured before the pipeline refactor."""
        from repro.journal import CampaignJournal, campaign_meta
        from repro.fleet import FailureInjector, RetryPolicy
        from repro.obs import Tracer
        from repro.par import merge_traces
        from repro.par.shard import spans_to_payload

        config = FleetConfig(hosts=10, vms_per_host=10,
                             inplace_fraction=1.0, seed=42)
        injector = FailureInjector(0.0, seed=config.seed)
        retry = RetryPolicy(max_retries=3)
        journal_path = str(tmp_path / "campaign.journal")
        journal = CampaignJournal.create(
            journal_path, campaign_meta(config, injector, retry))
        tracer = Tracer()
        controller = FleetController(config, injector=injector, retry=retry,
                                     journal=journal, tracer=tracer)
        metrics = controller.run()

        document = json.dumps(metrics.to_dict(), indent=2, sort_keys=True)
        assert document.encode() == read_golden("fleet_inplace_only.json")
        trace = merge_traces(
            [("fleet", spans_to_payload(tracer.trace))], prefix=False)
        assert (trace.to_chrome_trace().encode()
                == read_golden("fleet_inplace_only_trace.json"))
        with open(journal_path, "rb") as handle:
            assert handle.read() == read_golden("fleet_inplace_only.journal")

    def test_default_mechanism_leaves_document_unannotated(self):
        config = FleetConfig(hosts=4, vms_per_host=4, seed=7)
        metrics = FleetController(config).run()
        document = metrics.to_dict()
        assert "mechanism" not in document["campaign"]
        assert "mechanism_mix" not in document

    def test_non_default_mechanism_annotates_document(self):
        config = FleetConfig(hosts=4, vms_per_host=4, seed=7,
                             mechanism="inplace")
        controller = FleetController(config)
        document = controller.run().to_dict()
        assert document["campaign"]["mechanism"] == "inplace"
        assert document["mechanism_mix"] == controller.mechanism_mix()

    def test_campaign_meta_journals_only_non_default_mechanism(self):
        from repro.fleet import FailureInjector, RetryPolicy
        from repro.journal import campaign_meta

        injector = FailureInjector(0.0, seed=1)
        retry = RetryPolicy()
        default = campaign_meta(FleetConfig(), injector, retry)
        assert "mechanism" not in default["config"]
        tuned = campaign_meta(FleetConfig(mechanism="auto"), injector, retry)
        assert tuned["config"]["mechanism"] == "auto"
        # recover() builds FleetConfig(**config): both shapes round-trip.
        assert FleetConfig(
            **{**default["config"],
               "pool": tuple(default["config"]["pool"])}).mechanism == "hybrid"


# -- mechanism simulations against the pipeline --------------------------------


class TestMechanismStagePlans:
    def test_inplace_stage_plan_matches_run_report(self, xen_host_factory):
        from repro.core.inplace import InPlaceTP

        machine = xen_host_factory(vm_count=3, memory_gib=2.0)
        transplant = InPlaceTP(machine, HypervisorKind.KVM)
        plan = transplant.stage_plan()
        report = transplant.run(SimClock())
        assert plan.stage_s(Stage.CAPTURE) == pytest.approx(report.pram_s)
        assert plan.stage_s(Stage.TRANSLATE) == pytest.approx(
            report.translation_s)
        assert plan.stage_s(Stage.TRANSFER) == pytest.approx(report.reboot_s)
        assert plan.stage_s(Stage.RESTORE) == pytest.approx(
            report.restoration_s)
        assert plan.downtime_s == pytest.approx(report.downtime_s)

    def test_migration_stage_plan_matches_migrate_report(
            self, xen_host_factory, kvm_host_factory, fabric):
        from repro.core.migration import MigrationTP

        source = xen_host_factory(vm_count=1, memory_gib=1.0)
        destination = kvm_host_factory()
        fabric.connect(source, destination)
        migrator = MigrationTP(fabric, source, destination)
        domain = next(iter(source.hypervisor.domains.values()))
        plan = migrator.stage_plan(domain, dirty_rate_bytes_s=1 << 20)
        report = migrator.migrate(domain, SimClock(),
                                  dirty_rate_bytes_s=1 << 20)
        assert plan.downtime_s == pytest.approx(report.downtime_s)
        assert plan.total_s == pytest.approx(report.total_s)
        # The mechanism sim charges the UISR proxy pair (§3.3).
        assert plan.stage_s(Stage.TRANSLATE) > 0.0

    def test_orchestrator_policy_predicts_pipeline_downtime(
            self, xen_host_factory):
        from repro.orchestrator.policy import TransplantPolicy

        machine = xen_host_factory(vm_count=4, memory_gib=1.0)
        policy = TransplantPolicy()
        predicted = policy.predict_inplace_downtime_s(
            machine, HypervisorKind.KVM)
        shapes = [(d.vm.config.vcpus,
                   DEFAULT_COST_MODEL.entries_for(d.vm.image.size_bytes,
                                                  d.vm.image.page_size, True))
                  for d in machine.hypervisor.domains.values()]
        plan = InPlacePipeline(machine, target_kind=HypervisorKind.KVM,
                               ).plan_shapes(machine.name, shapes)
        assert predicted == plan.downtime_s


# -- mechanism policy ----------------------------------------------------------


def profile(name, workload="cpu-memory", memory_gib=4, capable=True,
            migratable=True):
    return VMProfile(
        name=name, memory_bytes=memory_gib * GIB,
        dirty_rate_bytes_s={"idle": 1 << 20, "cpu-memory": 48 << 20,
                            "streaming": 96 << 20}[workload],
        downtime_slo_s=WORKLOAD_SLO_S[workload],
        inplace_capable=capable, migratable=migratable,
    )


@pytest.fixture
def pipelines():
    return TransplantPipelines(verify=VerifySpec(0.01, 0.002))


def decide(policy_kind, vms, pipelines, spare=100):
    policy = MechanismPolicy(policy_kind)
    return policy.decide_host(
        "host0", vms,
        inplace=pipelines.inplace(HypervisorKind.KVM),
        migration=pipelines.migration(HypervisorKind.KVM),
        spare_slots=spare,
    )


class TestMechanismPolicy:
    def test_unknown_mechanism_rejected(self):
        with pytest.raises(TransplantError, match="unknown mechanism"):
            MechanismPolicy("teleport")
        with pytest.raises(FleetError, match="unknown mechanism"):
            FleetConfig(mechanism="teleport")

    def test_inplace_policy_everyone_rides(self, pipelines):
        vms = [profile(f"vm{i}") for i in range(5)]
        decision = decide("inplace", vms, pipelines)
        assert decision.resolved == "inplace"
        assert decision.evacuate == ()
        assert len(decision.rides) == 5

    def test_migration_policy_evacuates_everything_movable(self, pipelines):
        vms = [profile("vm0"), profile("vm1"),
               profile("vm2", migratable=False)]
        decision = decide("migration", vms, pipelines)
        assert set(decision.evacuate) == {"vm0", "vm1"}
        assert decision.rides == ("vm2",)
        assert decision.resolved == "hybrid"

    def test_migration_policy_respects_spare_capacity(self, pipelines):
        vms = [profile("vm0", "streaming"), profile("vm1"), profile("vm2")]
        decision = decide("migration", vms, pipelines, spare=1)
        # Strictest SLO first when capacity runs short.
        assert decision.evacuate == ("vm0",)

    def test_hybrid_policy_is_the_legacy_split(self, pipelines):
        vms = [profile("vm0", capable=False), profile("vm1"),
               profile("vm2", capable=False, migratable=False)]
        decision = decide("hybrid", vms, pipelines)
        assert decision.evacuate == ("vm0",)
        # vm2 can neither ride nor move: a recorded SLO violation.
        assert "vm2" in decision.slo_violations

    def test_hybrid_ignores_spare_capacity(self, pipelines):
        # The planner validates capacity (BtrPlace semantics); the hybrid
        # decision itself must not silently strand incompatible VMs.
        vms = [profile(f"vm{i}", capable=False) for i in range(4)]
        decision = decide("hybrid", vms, pipelines, spare=0)
        assert len(decision.evacuate) == 4

    # -- the auto heuristic, corner by corner ------------------------------

    @pytest.mark.parametrize(
        "workloads,spare,expected_evacuated",
        [
            # Ample capacity: only the streaming VM's 2 s SLO is tighter
            # than the ~10-VM reboot downtime.
            (["streaming"] + ["cpu-memory"] * 4 + ["idle"] * 5, 100,
             {"vm0"}),
            # No spare capacity: nobody can move.
            (["streaming"] + ["cpu-memory"] * 9, 0, set()),
            # All idle: reboot downtime is far under every SLO.
            (["idle"] * 10, 100, set()),
        ],
    )
    def test_auto_capacity_corners(self, pipelines, workloads, spare,
                                   expected_evacuated):
        vms = [profile(f"vm{i}", w) for i, w in enumerate(workloads)]
        decision = decide("auto", vms, pipelines, spare=spare)
        assert set(decision.evacuate) == expected_evacuated

    def test_auto_slow_fabric_keeps_vm_on_the_reboot(self):
        # A fabric so slow that MigrationTP's own stop-and-copy downtime
        # exceeds the streaming SLO: migrating would be worse than riding,
        # so the VM rides and the violation is recorded.
        slow = TransplantPipelines(link_rate=1 << 20)  # 1 MiB/s
        vms = [profile("vm0", "streaming")] + [
            profile(f"vm{i}") for i in range(1, 10)]
        decision = decide("auto", vms, slow, spare=100)
        assert "vm0" not in decision.evacuate
        assert "vm0" in decision.slo_violations

    def test_auto_incapable_vm_always_moves_given_capacity(self, pipelines):
        vms = [profile("vm0", capable=False),
               profile("vm1")]
        decision = decide("auto", vms, pipelines)
        assert "vm0" in decision.evacuate

    def test_auto_reaches_fixed_point(self, pipelines):
        # Moving the streaming VMs shrinks the predicted reboot downtime;
        # the remaining cpu-memory riders must then satisfy their SLO, so
        # the loop stops without evacuating them.
        vms = ([profile(f"s{i}", "streaming") for i in range(3)]
               + [profile(f"c{i}", "cpu-memory", memory_gib=8)
                  for i in range(12)])
        decision = decide("auto", vms, pipelines)
        assert {vm for vm in decision.evacuate} == {"s0", "s1", "s2"}
        assert decision.slo_violations == ()
        predicted = decision.predicted_downtime_s
        for name in decision.rides:
            assert WORKLOAD_SLO_S["cpu-memory"] >= predicted

    def test_auto_property_no_unflagged_slo_violation(self, pipelines):
        """Property: any VM whose SLO the decision cannot meet is either
        evacuated (and meets it via MigrationTP) or flagged."""
        import random

        rng = random.Random(1234)
        migration = pipelines.migration(HypervisorKind.KVM)
        for trial in range(30):
            vms = [
                profile(
                    f"t{trial}vm{i}",
                    rng.choice(["idle", "cpu-memory", "streaming"]),
                    memory_gib=rng.choice([2, 4, 8]),
                    capable=rng.random() > 0.2,
                    migratable=rng.random() > 0.2,
                )
                for i in range(rng.randrange(1, 14))
            ]
            decision = decide("auto", vms, pipelines,
                              spare=rng.randrange(0, 12))
            by_name = {vm.name: vm for vm in vms}
            predicted = decision.predicted_downtime_s
            for name in decision.rides:
                vm = by_name[name]
                ok = vm.inplace_capable and vm.downtime_slo_s >= predicted
                assert ok or name in decision.slo_violations
            for name in decision.evacuate:
                vm = by_name[name]
                downtime = migration.plan_vm(
                    vm.name, vm.memory_bytes, vm.dirty_rate_bytes_s,
                ).downtime_s
                # A capable VM only moves when moving actually meets the
                # SLO; an incapable one moves because riding is worse.
                assert downtime <= vm.downtime_slo_s or not vm.inplace_capable

    def test_decide_fleet_spends_shared_budget(self, pipelines):
        host_vms = {
            "a": [profile("a0", capable=False), profile("a1")],
            "b": [profile("b0", capable=False), profile("b1")],
        }
        decisions = decide_fleet(
            MechanismPolicy("migration"), host_vms,
            {"a": 1, "b": 1, "spare": 1},
            inplace=pipelines.inplace(HypervisorKind.KVM),
            migration=pipelines.migration(HypervisorKind.KVM),
        )
        # Host a sees b's + spare's slots (2), host b sees what a left.
        assert len(decisions["a"].evacuate) == 2
        assert len(decisions["b"].evacuate) == 1

    def test_mechanism_mix_sorted_and_counted(self, pipelines):
        host_vms = {
            "h1": [profile("x0", capable=False), profile("x1")],
            "h0": [profile("y0"), profile("y1")],
        }
        decisions = decide_fleet(
            MechanismPolicy("hybrid"), host_vms, {"h0": 2, "h1": 2},
            inplace=pipelines.inplace(HypervisorKind.KVM),
            migration=pipelines.migration(HypervisorKind.KVM),
        )
        mix = mechanism_mix(decisions)
        assert list(mix) == sorted(mix)
        assert mix == {
            "hybrid": {"hosts": 1, "vms": 2, "evacuations": 1},
            "inplace": {"hosts": 1, "vms": 2, "evacuations": 0},
        }

    def test_profile_adapts_cluster_vm(self):
        cluster = build_paper_cluster(hosts=2, vms_per_host=2,
                                      inplace_fraction=0.5, seed=3)
        for vm in cluster.vms.values():
            adapted = VMProfile.from_cluster_vm(vm)
            assert adapted.name == vm.name
            assert adapted.memory_bytes == vm.memory_bytes
            assert adapted.inplace_capable == vm.inplace_compatible
            assert adapted.downtime_slo_s == WORKLOAD_SLO_S[vm.workload.value]


# -- mechanism campaigns -------------------------------------------------------


class TestMechanismCampaigns:
    def run(self, mechanism, **overrides):
        kwargs = dict(hosts=6, vms_per_host=6, inplace_fraction=0.5,
                      seed=11, mechanism=mechanism)
        kwargs.update(overrides)
        controller = FleetController(FleetConfig(**kwargs))
        return controller, controller.run()

    def test_inplace_campaign_never_migrates(self):
        controller, metrics = self.run("inplace")
        assert metrics.all_terminal
        assert metrics.migrations_executed == 0
        assert controller.mechanism_mix() == {
            "inplace": {"hosts": 6, "vms": 36, "evacuations": 0},
        }

    def test_migration_campaign_evacuates_more_than_hybrid(self):
        _, hybrid = self.run("hybrid")
        _, migration = self.run("migration")
        assert migration.all_terminal
        assert migration.migrations_executed > hybrid.migrations_executed

    def test_auto_campaign_terminates_and_reports_mix(self):
        controller, metrics = self.run("auto")
        assert metrics.all_terminal
        assert metrics.done_hosts == 6
        mix = controller.mechanism_mix()
        assert sum(entry["hosts"] for entry in mix.values()) == 6
        assert sum(entry["vms"] for entry in mix.values()) == 36

    def test_mechanism_campaigns_are_deterministic(self):
        for mechanism in ("inplace", "auto"):
            first = self.run(mechanism)[1].to_json()
            second = self.run(mechanism)[1].to_json()
            assert first == second

    def test_hybrid_campaign_equals_legacy_default(self):
        # mechanism="hybrid" must reproduce the implicit pre-policy split.
        _, explicit = self.run("hybrid")
        controller = FleetController(FleetConfig(
            hosts=6, vms_per_host=6, inplace_fraction=0.5, seed=11))
        implicit = controller.run()
        assert explicit.to_json() == implicit.to_json()
