"""Tests for reconfiguration-plan serialization and metric percentiles."""

import json

import pytest

from repro.errors import PlanningError, ReproError
from repro.cluster import (
    decode_plan,
    encode_plan,
    export_plan,
    import_plan,
    summarize_plan,
)
from repro.cluster.btrplace import BtrPlacePlanner
from repro.cluster.executor import PlanExecutor
from repro.cluster.model import build_paper_cluster
from repro.workloads.base import MetricSeries


class TestPlanSerialization:
    def _plan(self, fraction=0.5):
        cluster = build_paper_cluster(inplace_fraction=fraction)
        return BtrPlacePlanner(cluster).plan()

    def test_roundtrip_preserves_structure(self):
        plan = self._plan()
        restored = import_plan(export_plan(plan))
        assert restored.migration_count == plan.migration_count
        assert restored.upgrade_count == plan.upgrade_count
        assert len(restored.groups) == len(plan.groups)
        assert [m.vm_name for m in restored.migrations()] == \
            [m.vm_name for m in plan.migrations()]

    def test_roundtrip_executes_identically(self):
        plan = self._plan()
        executor = PlanExecutor()
        original = executor.execute(plan)
        restored = executor.execute(import_plan(export_plan(plan)))
        assert restored.total_s == pytest.approx(original.total_s)

    def test_export_is_valid_json(self):
        document = json.loads(export_plan(self._plan()))
        assert document["format"] == "hypertp-plan"
        assert document["groups"][0]["nodes"]

    def test_import_validates_envelope(self):
        with pytest.raises(PlanningError, match="valid JSON"):
            import_plan("{nope")
        with pytest.raises(PlanningError, match="not a hypertp plan"):
            import_plan(json.dumps({"format": "other"}))
        with pytest.raises(PlanningError, match="version"):
            import_plan(json.dumps({"format": "hypertp-plan",
                                    "version": 99}))
        with pytest.raises(PlanningError, match="malformed"):
            import_plan(json.dumps({"format": "hypertp-plan", "version": 1,
                                    "groups": [{"index": 0}]}))

    def test_summary_mentions_every_group(self):
        plan = self._plan()
        summary = summarize_plan(plan)
        assert f"{plan.migration_count} migrations" in summary
        for group in plan.groups:
            assert f"round {group.group_index}" in summary


class TestPercentiles:
    def _series(self):
        series = MetricSeries("m", "x")
        for i in range(100):
            series.append(float(i), float(i + 1))  # 1..100
        return series

    def test_median_and_p99(self):
        series = self._series()
        assert series.percentile(0.5) == 50.0
        assert series.percentile(0.99) == 99.0
        assert series.percentile(1.0) == 100.0
        assert series.percentile(0.0) == 1.0

    def test_validation(self):
        with pytest.raises(ReproError):
            MetricSeries("m", "x").percentile(0.5)
        with pytest.raises(ReproError):
            self._series().percentile(1.5)


class TestPlanBlobCodec:
    """The framed binary envelope layered over the JSON export."""

    def _plan(self):
        cluster = build_paper_cluster(inplace_fraction=0.5)
        return BtrPlacePlanner(cluster).plan()

    def test_blob_roundtrip(self):
        plan = self._plan()
        restored = decode_plan(encode_plan(plan))
        assert restored.migration_count == plan.migration_count
        assert len(restored.groups) == len(plan.groups)

    def test_blob_is_deterministic(self):
        plan = self._plan()
        assert encode_plan(plan) == encode_plan(plan)

    def test_trailing_bytes_rejected(self):
        blob = encode_plan(self._plan())
        with pytest.raises(PlanningError, match="trailing"):
            decode_plan(blob + b"x")

    def test_corruption_rejected(self):
        blob = bytearray(encode_plan(self._plan()))
        blob[len(blob) // 2] ^= 0xFF
        with pytest.raises(PlanningError, match="corrupt"):
            decode_plan(bytes(blob))

    def test_version_checked(self):
        from repro.io import FrameWriter
        from repro.io.frames import Packer
        from repro.cluster.serialize import PLAN_DOC_FRAME

        writer = FrameWriter()
        writer.frame(PLAN_DOC_FRAME, Packer().u32(99).u32(0).bytes())
        with pytest.raises(PlanningError, match="version"):
            decode_plan(writer.finish())
