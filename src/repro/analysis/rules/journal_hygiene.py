"""Write-ahead ordering rule for the campaign journal (``repro.journal``).

``journal-hygiene``: crash recovery replays the journal, so a state
mutation that can execute *before* its transition record is durable is a
recovery hole — a crash in between leaves the campaign state ahead of the
log, and the resumed run diverges.  The contract, concretely:

every assignment to a ``.state`` attribute in a function that also
appends to the trace/journal must be *dominated* by the append — on all
CFG paths, exception edges included.  (The in-memory ``transitions``
list is deliberately not a tracked mutation: an unjournaled campaign
legally appends to it with no journal attached, and a branch-insensitive
may-analysis cannot see the ``journal is None`` guard.)

The rule runs the forward may-analysis from
:mod:`repro.analysis.dataflow` per function: the entry fact is
``{"unjournaled"}``, killed by a journal/trace append node; any mutation
node whose input fact still contains ``"unjournaled"`` has a path from
entry that mutates before logging.  Exception edges propagate the input
fact — "the append raised, so nothing became durable" — which is exactly
the write-ahead semantics: a handler that mutates state after a failed
append is flagged too.
"""

import ast
from typing import Iterable, List, Optional, Tuple

from repro.analysis.cfg import CFGNode, build_cfg, payload_exprs
from repro.analysis.dataflow import solve_forward
from repro.analysis.engine import Rule, register_rule
from repro.analysis.findings import Finding
from repro.analysis.project import Project, SourceModule

#: modules held to write-ahead ordering (path prefixes under the package)
JOURNAL_SCOPE = ("fleet/", "journal.py")

#: durable-append verbs on a trace/journal receiver
APPEND_ATTRS = frozenset({
    "append", "transition", "wave_barrier", "checkpoint", "commit",
})

#: receiver names that identify the trace/journal (``trace.append``,
#: ``self.journal.transition``, ...)
APPEND_RECEIVERS = frozenset({"trace", "journal", "_journal"})

#: the fact meaning "no append has happened yet on some path here"
UNJOURNALED = "unjournaled"


def _terminal_name(expr: ast.expr) -> Optional[str]:
    """``trace`` for ``trace``, ``journal`` for ``self.journal``."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _append_calls(node: CFGNode) -> List[int]:
    """Lines of durable trace/journal appends performed by this node."""
    lines: List[int] = []
    for expr in payload_exprs(node.payload):
        for sub in ast.walk(expr):
            if (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in APPEND_ATTRS
                    and _terminal_name(sub.func.value) in APPEND_RECEIVERS):
                lines.append(sub.lineno)
    return lines


def _state_mutations(node: CFGNode) -> List[Tuple[str, int]]:
    """``(description, line)`` for state mutations this node performs."""
    mutations: List[Tuple[str, int]] = []
    for expr in payload_exprs(node.payload):
        for sub in ast.walk(expr):
            if isinstance(sub, (ast.Assign, ast.AugAssign)):
                targets = (sub.targets if isinstance(sub, ast.Assign)
                           else [sub.target])
                for target in targets:
                    if isinstance(target, ast.Attribute) \
                            and target.attr == "state":
                        mutations.append((
                            f"assignment to "
                            f"'{_describe_target(target)}'",
                            sub.lineno,
                        ))
    return mutations


def _describe_target(target: ast.Attribute) -> str:
    base = _terminal_name(target.value)
    return f"{base}.{target.attr}" if base else target.attr


def _functions(module: SourceModule):
    def walk(node, prefix: str):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield f"{prefix}{child.name}", child
                yield from walk(child, f"{prefix}{child.name}.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")

    yield from walk(module.tree, "")


@register_rule
class JournalHygieneRule(Rule):
    name = "journal-hygiene"
    description = (
        "in functions that journal, every state mutation is preceded by "
        "the trace/journal append on all CFG paths (write-ahead ordering)"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            if not module.path.startswith(JOURNAL_SCOPE):
                continue
            for symbol, func in _functions(module):
                yield from self._check_function(module, symbol, func)

    def _check_function(self, module: SourceModule, symbol: str,
                        func) -> Iterable[Finding]:
        cfg = build_cfg(func)
        appends = {node.index: _append_calls(node) for node in cfg.nodes}
        mutations = {node.index: _state_mutations(node)
                     for node in cfg.nodes}
        if not any(appends.values()) or not any(mutations.values()):
            return  # the function is not a journaling/mutating composite

        def transfer(node: CFGNode, fact):
            if appends[node.index]:
                return fact - {UNJOURNALED}
            return fact

        solution = solve_forward(cfg, frozenset({UNJOURNALED}), transfer)
        for node in cfg.nodes:
            if not solution.reachable(node.index):
                continue
            if UNJOURNALED not in solution.in_fact(node.index):
                continue
            for description, line in mutations[node.index]:
                yield self.finding(
                    module.path, line,
                    f"{description} can execute before the transition "
                    f"reaches the trace/journal on some path; a crash in "
                    f"between leaves recovery replaying a log that is "
                    f"behind the state it must rebuild — append first",
                    symbol=symbol)
