"""Binary codec for UISR documents.

UISR is a wire/RAM format: InPlaceTP stores encoded documents in reserved RAM
across the micro-reboot, MigrationTP streams them through the proxy pair.
The codec is self-describing enough to fail loudly on corruption, and its
output size is what Fig. 14 reports as "UISR formats" overhead.

Every encoded document travels as one ``repro.io`` frame (CRC32-checked,
END-terminated), so a bit flip anywhere in the blob raises before the body
is even parsed.  Body layout: magic, version, VM identity, then sections
for vCPUs, platform, memory map and devices.  Integers are little-endian
fixed width (XDR-like spirit, LE for consistency with the rest of the
library).
"""

from typing import List, Optional

from repro.errors import StateFormatError, UISRError
from repro.guest.devices import (
    IOAPICPin,
    IOAPICState,
    LAPICState,
    MTRRState,
    PITState,
    PlatformState,
    XSAVEState,
)
from repro.guest.vcpu import SegmentDescriptor, VCPUState
from repro.io.frames import FrameReader, FrameWriter, Packer, StreamMeter, Unpacker
from repro.obs import NULL_TRACER
from repro.obs.metrics import MetricsRegistry
from repro.core.uisr.format import (
    UISRDeviceState,
    UISRMemoryChunk,
    UISRMemoryMap,
    UISRPlatform,
    UISRVCpu,
    UISRVMState,
)

UISR_MAGIC = 0x55495352  # "UISR"

#: frame type tag carrying one encoded UISR document body.
UISR_DOC_FRAME = 1


def _pack_str(packer: Packer, text: str) -> None:
    data = text.encode()
    packer.u16(len(data)).raw(data)


def _unpack_str(unpacker: Unpacker) -> str:
    return unpacker.raw(unpacker.u16()).decode()


def _pack_vcpu(packer: Packer, vcpu: VCPUState) -> None:
    packer.u32(vcpu.index).u32(vcpu.apic_id).u64(vcpu.xcr0)
    packer.u32(len(vcpu.gp))
    for name in sorted(vcpu.gp):
        _pack_str(packer, name)
        packer.u64(vcpu.gp[name])
    packer.u32(len(vcpu.segments))
    for name in sorted(vcpu.segments):
        seg = vcpu.segments[name]
        _pack_str(packer, name)
        packer.u16(seg.selector).u64(seg.base).u32(seg.limit).u16(seg.attributes)
    packer.u32(len(vcpu.control))
    for name in sorted(vcpu.control):
        _pack_str(packer, name)
        packer.u64(vcpu.control[name])
    packer.u32(len(vcpu.msrs))
    for msr in sorted(vcpu.msrs):
        packer.u32(msr).u64(vcpu.msrs[msr])
    packer.u64_seq(vcpu.fpu)


def _unpack_vcpu(unpacker: Unpacker) -> VCPUState:
    index = unpacker.u32()
    apic_id = unpacker.u32()
    xcr0 = unpacker.u64()
    gp = {}
    for _ in range(unpacker.u32()):
        name = _unpack_str(unpacker)
        gp[name] = unpacker.u64()
    segments = {}
    for _ in range(unpacker.u32()):
        name = _unpack_str(unpacker)
        segments[name] = SegmentDescriptor(
            selector=unpacker.u16(),
            base=unpacker.u64(),
            limit=unpacker.u32(),
            attributes=unpacker.u16(),
        )
    control = {}
    for _ in range(unpacker.u32()):
        name = _unpack_str(unpacker)
        control[name] = unpacker.u64()
    msrs = {}
    for _ in range(unpacker.u32()):
        msr = unpacker.u32()
        msrs[msr] = unpacker.u64()
    fpu = unpacker.u64_seq()
    return VCPUState(index=index, gp=gp, segments=segments, control=control,
                     msrs=msrs, fpu=fpu, xcr0=xcr0, apic_id=apic_id)


def _pack_lapic(packer: Packer, lapic: LAPICState) -> None:
    packer.u32(lapic.apic_id).u64(lapic.apic_base_msr)
    packer.u32(lapic.task_priority).u32(lapic.spurious_vector)
    packer.u32(lapic.lvt_timer).u32(lapic.lvt_lint0).u32(lapic.lvt_lint1)
    packer.u32(lapic.timer_initial_count).u32(lapic.timer_divide)
    packer.u64_seq(lapic.isr)
    packer.u64_seq(lapic.irr)


def _unpack_lapic(unpacker: Unpacker) -> LAPICState:
    return LAPICState(
        apic_id=unpacker.u32(),
        apic_base_msr=unpacker.u64(),
        task_priority=unpacker.u32(),
        spurious_vector=unpacker.u32(),
        lvt_timer=unpacker.u32(),
        lvt_lint0=unpacker.u32(),
        lvt_lint1=unpacker.u32(),
        timer_initial_count=unpacker.u32(),
        timer_divide=unpacker.u32(),
        isr=unpacker.u64_seq(),
        irr=unpacker.u64_seq(),
    )


def _pack_platform(packer: Packer, platform: PlatformState) -> None:
    packer.u32(len(platform.lapics))
    for lapic in platform.lapics:
        _pack_lapic(packer, lapic)
    packer.u32(platform.ioapic.ioapic_id)
    packer.u32(len(platform.ioapic.pins))
    for pin in platform.ioapic.pins:
        packer.u8(pin.vector)
        packer.u8(1 if pin.masked else 0)
        packer.u8(1 if pin.trigger_level else 0)
        packer.u8(pin.dest_apic)
    for count in platform.pit.channel_counts:
        packer.u32(count)
    for mode in platform.pit.channel_modes:
        packer.u8(mode)
    packer.u8(1 if platform.pit.speaker_enabled else 0)
    packer.u32(platform.mtrr.default_type)
    packer.u64_seq(platform.mtrr.fixed)
    packer.u32(len(platform.mtrr.variable))
    for base, mask in platform.mtrr.variable:
        packer.u64(base).u64(mask)
    packer.u32(len(platform.xsave))
    for xsave in platform.xsave:
        packer.u64(xsave.xstate_bv).u64(xsave.xcomp_bv)
        packer.u64_seq(xsave.blocks)


def _unpack_platform(unpacker: Unpacker) -> PlatformState:
    lapics = [_unpack_lapic(unpacker) for _ in range(unpacker.u32())]
    ioapic_id = unpacker.u32()
    pins = [
        IOAPICPin(
            vector=unpacker.u8(),
            masked=bool(unpacker.u8()),
            trigger_level=bool(unpacker.u8()),
            dest_apic=unpacker.u8(),
        )
        for _ in range(unpacker.u32())
    ]
    counts = tuple(unpacker.u32() for _ in range(3))
    modes = tuple(unpacker.u8() for _ in range(3))
    speaker = bool(unpacker.u8())
    default_type = unpacker.u32()
    fixed = unpacker.u64_seq()
    variable = tuple((unpacker.u64(), unpacker.u64())
                     for _ in range(unpacker.u32()))
    xsave = [
        XSAVEState(
            xstate_bv=unpacker.u64(),
            xcomp_bv=unpacker.u64(),
            blocks=unpacker.u64_seq(),
        )
        for _ in range(unpacker.u32())
    ]
    return PlatformState(
        lapics=lapics,
        ioapic=IOAPICState(pins=pins, ioapic_id=ioapic_id),
        pit=PITState(channel_counts=counts, channel_modes=modes,
                     speaker_enabled=speaker),
        mtrr=MTRRState(default_type=default_type, fixed=fixed,
                       variable=variable),
        xsave=xsave,
    )


def _pack_memory_map(packer: Packer, memory_map: UISRMemoryMap) -> None:
    packer.u32(memory_map.page_size)
    packer.u64(memory_map.total_bytes)
    if memory_map.by_reference:
        packer.u8(1)
        _pack_str(packer, memory_map.pram_file)
    else:
        packer.u8(0)
        packer.u32(len(memory_map.chunks))
        for chunk in memory_map.chunks:
            packer.u64(chunk.gfn).u64(chunk.mfn).u8(chunk.order)


def _unpack_memory_map(unpacker: Unpacker) -> UISRMemoryMap:
    page_size = unpacker.u32()
    total_bytes = unpacker.u64()
    if unpacker.u8():
        return UISRMemoryMap(page_size=page_size, total_bytes=total_bytes,
                             pram_file=_unpack_str(unpacker))
    chunks = [
        UISRMemoryChunk(gfn=unpacker.u64(), mfn=unpacker.u64(),
                        order=unpacker.u8())
        for _ in range(unpacker.u32())
    ]
    return UISRMemoryMap(page_size=page_size, total_bytes=total_bytes,
                         chunks=chunks)


def encode_uisr(state: UISRVMState,
                registry: Optional[MetricsRegistry] = None,
                tracer=NULL_TRACER) -> bytes:
    """Serialize a UISR document to one framed, CRC-checked stream."""
    with tracer.span("uisr.encode", "io"):
        packer = Packer()
        packer.u32(UISR_MAGIC).u32(state.version)
        _pack_str(packer, state.vm_name)
        packer.u32(state.vcpu_count)
        packer.u64(state.memory_bytes)
        _pack_str(packer, state.source_hypervisor)
        packer.u32(len(state.vcpus))
        for record in state.vcpus:
            _pack_vcpu(packer, record.vcpu)
        _pack_platform(packer, state.platform.platform)
        _pack_memory_map(packer, state.memory_map)
        packer.u32(len(state.devices))
        for device in state.devices:
            _pack_str(packer, device.name)
            _pack_str(packer, device.device_class)
            _pack_str(packer, device.strategy)
            packer.u32(len(device.payload)).raw(device.payload)
        writer = FrameWriter(StreamMeter("uisr", registry))
        writer.frame(UISR_DOC_FRAME, packer.bytes())
        return writer.finish()


def _unwrap_envelope(blob: bytes,
                     registry: Optional[MetricsRegistry]) -> bytes:
    """Strip and verify the frame envelope; returns the document body."""
    try:
        reader = FrameReader(blob, StreamMeter("uisr", registry))
        first = reader.read()
        if first is None:
            raise UISRError("empty UISR stream")
        frame_type, body = first
        if frame_type != UISR_DOC_FRAME:
            raise UISRError(f"unexpected UISR frame type {frame_type}")
        if reader.read() is not None:
            raise UISRError("multiple frames in UISR stream")
        reader.expect_end()
    except UISRError:
        raise
    except StateFormatError as exc:
        raise UISRError(f"corrupt UISR envelope: {exc}") from exc
    return body


def decode_uisr(blob: bytes,
                registry: Optional[MetricsRegistry] = None,
                tracer=NULL_TRACER) -> UISRVMState:
    """Parse a UISR document from its framed encoding."""
    with tracer.span("uisr.decode", "io"):
        body = _unwrap_envelope(blob, registry)
    unpacker = Unpacker(body)
    magic = unpacker.u32()
    if magic != UISR_MAGIC:
        raise UISRError(f"bad UISR magic {magic:#x}")
    version = unpacker.u32()
    vm_name = _unpack_str(unpacker)
    vcpu_count = unpacker.u32()
    memory_bytes = unpacker.u64()
    source = _unpack_str(unpacker)
    vcpus = [UISRVCpu(_unpack_vcpu(unpacker)) for _ in range(unpacker.u32())]
    platform = UISRPlatform(_unpack_platform(unpacker))
    memory_map = _unpack_memory_map(unpacker)
    devices: List[UISRDeviceState] = []
    for _ in range(unpacker.u32()):
        name = _unpack_str(unpacker)
        device_class = _unpack_str(unpacker)
        strategy = _unpack_str(unpacker)
        payload = unpacker.raw(unpacker.u32())
        devices.append(UISRDeviceState(name=name, device_class=device_class,
                                       strategy=strategy, payload=payload))
    unpacker.expect_end()
    return UISRVMState(
        version=version,
        vm_name=vm_name,
        vcpu_count=vcpu_count,
        memory_bytes=memory_bytes,
        source_hypervisor=source,
        vcpus=vcpus,
        platform=platform,
        memory_map=memory_map,
        devices=devices,
    )


def uisr_size(state: UISRVMState) -> int:
    """Encoded size in bytes (the Fig. 14 'UISR formats' series)."""
    return len(encode_uisr(state))
