"""Journal append overhead on the fleet-window campaign.

The write-ahead journal buys crash recovery with one extra write+flush
per host transition and wave boundary; this bench measures what that
costs.  Each cell runs the same seeded campaign twice — plain, and with
a :class:`repro.journal.CampaignJournal` attached — asserts the metrics
documents are byte-identical (journaling must never perturb the
simulation), and reports the wall-clock overhead.

The deterministic payload carries the record/byte counts and the
identity verdict; wall times and the overhead percentage are volatile
and live in ``meta`` (see :mod:`repro.bench.report`).  The acceptance
guard — journal overhead under 10% on the fleet-window sweep cell — is
enforced by ``test_overhead_under_budget`` with a noise floor: on a
sub-100ms campaign the flush cost is measurement noise, so the guard
only binds once the plain run is long enough to time meaningfully.

Emits ``BENCH_journal_overhead.json`` next to this file (override with
``--json PATH``); ``--smoke`` restricts to the 10-host cell for CI.
"""

import argparse
import os
import statistics
import tempfile
import time
from pathlib import Path

from repro.bench.report import format_table, print_experiment, write_bench_json

CELLS = [
    {"hosts": 10, "fail_rate": 0.01},
    {"hosts": 100, "fail_rate": 0.01},
    {"hosts": 1000, "fail_rate": 0.01},
]
SMOKE_CELLS = [{"hosts": 10, "fail_rate": 0.01}]
SEED = 42

DEFAULT_JSON_PATH = (Path(__file__).resolve().parent
                     / "BENCH_journal_overhead.json")

PAYLOAD_FORMAT = "hypertp-bench-journal-overhead"
PAYLOAD_VERSION = 1

#: the acceptance bound on journal overhead (fraction of plain wall)
OVERHEAD_BUDGET = 0.10
#: plain walls under this are noise; the relative guard does not bind
NOISE_FLOOR_S = 0.1


def _campaign_parts(cell):
    from repro.fleet import FailureInjector, FleetConfig, RetryPolicy

    hosts = cell["hosts"]
    config = FleetConfig(hosts=hosts, vms_per_host=10, inplace_fraction=0.8,
                         group_size=max(2, hosts // 5),
                         seed=cell.get("seed", SEED), concurrency=8)
    injector = FailureInjector(cell["fail_rate"],
                               seed=cell.get("seed", SEED))
    retry = RetryPolicy(max_retries=3, backoff_base_s=5.0)
    return config, injector, retry


def _controller(cell, journal=None):
    from repro.fleet import FleetController

    config, injector, retry = _campaign_parts(cell)
    return FleetController(config, injector=injector, retry=retry,
                           journal=journal)


#: interleaved plain/journaled pairs per cell; the median per-pair delta
#: is the overhead estimate (see :func:`measure_cell`)
TRIALS = 7


def _journaled_run(cell):
    """One journaled campaign on a throwaway file; returns run facts."""
    from repro.journal import CampaignJournal, campaign_meta

    handle, path = tempfile.mkstemp(suffix=".journal")
    os.close(handle)
    try:
        journal = CampaignJournal.create(
            path, campaign_meta(*_campaign_parts(cell)))
        controller = _controller(cell, journal=journal)
        started = time.perf_counter()
        document = controller.run().to_json()
        wall_s = time.perf_counter() - started
        return {
            "wall_s": wall_s,
            "document": document,
            "records": journal.records_appended,
            "journal_bytes": journal.bytes_appended,
        }
    finally:
        os.unlink(path)


def measure_cell(cell):
    """One cell: plain campaign vs journaled campaign, same seed.

    Runs ``TRIALS`` interleaved plain/journaled pairs; the overhead is
    the **median of the per-pair deltas** over the median plain wall.
    Pairing cancels slow drift (thermal throttling, a busy neighbour)
    because both sides of a pair see the same machine state, and the
    median discards the occasional trial that lands on a scheduler
    spike — a single noisy trial would poison a min-vs-min or mean
    estimate of a cost this close to the noise floor.
    """
    _controller(cell).run()  # warm imports/caches off the timed paths

    plain_walls, journaled_walls = [], []
    plain_doc = journaled = None
    for _ in range(TRIALS):
        started = time.perf_counter()
        plain_doc = _controller(cell).run().to_json()
        plain_walls.append(time.perf_counter() - started)
        journaled = _journaled_run(cell)
        journaled_walls.append(journaled["wall_s"])

    plain_wall_s = statistics.median(plain_walls)
    delta_s = statistics.median(
        j - p for p, j in zip(plain_walls, journaled_walls))
    journaled_wall_s = plain_wall_s + delta_s
    journaled_doc = journaled["document"]
    records = journaled["records"]
    journal_bytes = journaled["journal_bytes"]

    overhead = delta_s / max(plain_wall_s, 1e-9)
    return {
        "entry": {
            "hosts": cell["hosts"],
            "fail_rate": cell["fail_rate"],
            "seed": cell.get("seed", SEED),
            "records": records,
            "journal_bytes": journal_bytes,
            "documents_identical": journaled_doc == plain_doc,
        },
        "plain_wall_s": round(plain_wall_s, 4),
        "journaled_wall_s": round(journaled_wall_s, 4),
        "overhead_pct": round(overhead * 100.0, 2),
    }


def run(smoke=False):
    return [measure_cell(cell)
            for cell in (SMOKE_CELLS if smoke else CELLS)]


def write_json(results, path=DEFAULT_JSON_PATH, extra_meta=None):
    """Write the artifact: identity/record counts deterministic, walls
    and the overhead percentages in the volatile meta block."""
    payload = {
        "format": PAYLOAD_FORMAT,
        "version": PAYLOAD_VERSION,
        "seed": SEED,
        "results": [r["entry"] for r in results],
    }
    meta = {
        "overhead_budget_pct": OVERHEAD_BUDGET * 100.0,
        "cells": [
            {"hosts": r["entry"]["hosts"],
             "plain_wall_s": r["plain_wall_s"],
             "journaled_wall_s": r["journaled_wall_s"],
             "overhead_pct": r["overhead_pct"]}
            for r in results
        ],
    }
    if extra_meta:
        meta.update(extra_meta)
    write_bench_json(str(path), payload, meta)
    return path


HEADERS = ["hosts", "fail", "records", "KiB", "identical",
           "plain (s)", "journaled (s)", "overhead"]


def to_rows(results):
    rows = []
    for result in results:
        entry = result["entry"]
        rows.append([
            entry["hosts"],
            f"{entry['fail_rate']:.0%}",
            entry["records"],
            f"{entry['journal_bytes'] / 1024:.1f}",
            "yes" if entry["documents_identical"] else "NO",
            f"{result['plain_wall_s']:.3f}",
            f"{result['journaled_wall_s']:.3f}",
            f"{result['overhead_pct']:+.1f}%",
        ])
    return rows


def test_journal_never_perturbs_the_campaign(benchmark):
    results = benchmark.pedantic(run, kwargs={"smoke": True},
                                 rounds=1, iterations=1)
    assert all(r["entry"]["documents_identical"] for r in results)
    write_json(results)
    print_experiment("journal overhead", "write-ahead log cost per campaign",
                     format_table(HEADERS, to_rows(results)))


def test_overhead_under_budget():
    """Append overhead stays under the acceptance budget.

    Measured on the largest cell so the campaign is long enough for the
    relative number to mean something; sub-noise-floor plain walls only
    get an absolute sanity bound.
    """
    result = measure_cell({"hosts": 1000, "fail_rate": 0.01})
    assert result["entry"]["documents_identical"]
    if result["plain_wall_s"] >= NOISE_FLOOR_S:
        assert result["overhead_pct"] <= OVERHEAD_BUDGET * 100.0
    else:
        # Too fast to time relatively; the flush cost must still be tiny.
        assert result["journaled_wall_s"] - result["plain_wall_s"] < 0.5


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="10-host cell only (CI)")
    parser.add_argument("--json", dest="json_path", metavar="PATH",
                        default=str(DEFAULT_JSON_PATH))
    args = parser.parse_args()

    results = run(smoke=args.smoke)
    if not all(r["entry"]["documents_identical"] for r in results):
        raise SystemExit("journaled campaign diverged from the plain run")
    path = write_json(results, args.json_path)
    print_experiment("journal overhead", "write-ahead log cost per campaign",
                     format_table(HEADERS, to_rows(results)))
    print(f"JSON written to {path}")


if __name__ == "__main__":
    main()
