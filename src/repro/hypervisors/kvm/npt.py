"""KVM's EPT-style MMU — nested page table with KVM's management policy.

Same hardware-dictated GFN->MFN mapping as Xen's p2m, but with a different
management policy: KVM keeps shadow-MMU bookkeeping (rmap lists on the host
side) instead of Xen's m2p table and PV type tags, and its per-entry metadata
is lighter.  The transplant's NPT *translation* is exactly this policy swap.
"""

from typing import Dict

from repro.guest.vm import VirtualMachine
from repro.hw.memory import PAGE_4K
from repro.hypervisors.base import NestedPageTable

# 8 B EPT entry + 8 B rmap slot per mapped guest page.
_EPT_BYTES_PER_ENTRY = 16
_EPT_ROOT_OVERHEAD = 2 * PAGE_4K

KVM_NPT_POLICY = "kvm-ept"


class KVMEpt(NestedPageTable):
    """Concrete NPT with KVM's EPT/shadow-MMU policy."""

    def __init__(self, gfn_to_mfn: Dict[int, int], page_size: int):
        metadata = _EPT_ROOT_OVERHEAD + _EPT_BYTES_PER_ENTRY * len(gfn_to_mfn)
        super().__init__(
            gfn_to_mfn=gfn_to_mfn,
            page_size=page_size,
            policy_tag=KVM_NPT_POLICY,
            metadata_bytes=metadata,
        )
        # Host-side reverse-map slots (rebuilt lazily on faults in real KVM).
        self.rmap_slots = len(gfn_to_mfn)


def build_ept(vm: VirtualMachine) -> KVMEpt:
    """Construct the EPT for a VM from its guest image mapping."""
    return KVMEpt(dict(vm.image.mappings()), vm.image.page_size)
