"""Tests for the sentinel response plane (feed, inventory, policy,
responder, report)."""

import json

import pytest

from repro.errors import SentinelError
from repro.sentinel import (
    DAY_S,
    FeedSchedule,
    FleetInventory,
    PolicyConfig,
    ResponsePolicy,
    Sentinel,
    SentinelConfig,
    build_feed,
    feed_statistics,
)
from repro.vulndb.cve import CVERecord
from repro.vulndb.data import VulnerabilityDatabase, load_default_database


@pytest.fixture(scope="module")
def db():
    return load_default_database()


def _record(cve_id, affected, score=9.0, component="pv", year=2021,
            days_to_patch=10):
    return CVERecord(
        cve_id=cve_id, year=year, affected=frozenset(affected),
        component=component, cvss_score=score, days_to_patch=days_to_patch,
    )


#: the preemption scenario database: one critical flaw per hypervisor,
#: disclosed back to back, so the second lands on the first response's
#: target mid-flight
PREEMPT_DB = VulnerabilityDatabase([
    _record("CVE-2021-0001", {"xen"}),
    _record("CVE-2021-0002", {"kvm"}, score=9.5, component="ioctl"),
])


def _clean_schedule(**overrides):
    """A feed with every perturbation off: pure publication order."""
    defaults = dict(seed=7, mean_gap_days=1.0, jitter=0.0,
                    batch_probability=0.0, duplicate_probability=0.0,
                    out_of_order_probability=0.0)
    defaults.update(overrides)
    return FeedSchedule(**defaults)


class TestFeedSchedule:
    def test_bad_knobs_rejected(self):
        with pytest.raises(SentinelError):
            FeedSchedule(mean_gap_days=0.0)
        with pytest.raises(SentinelError):
            FeedSchedule(jitter=1.5)
        with pytest.raises(SentinelError):
            FeedSchedule(batch_probability=-0.1)
        with pytest.raises(SentinelError):
            FeedSchedule(duplicate_probability=2.0)
        with pytest.raises(SentinelError):
            FeedSchedule(limit=0)
        with pytest.raises(SentinelError):
            FeedSchedule(start_s=-1.0)


class TestBuildFeed:
    def test_same_seed_same_feed(self, db):
        schedule = FeedSchedule(seed=13)
        assert build_feed(db, schedule) == build_feed(db, schedule)

    def test_different_seeds_differ(self, db):
        a = build_feed(db, FeedSchedule(seed=1))
        b = build_feed(db, FeedSchedule(seed=2))
        assert a != b

    def test_limit_caps_distinct_advisories(self, db):
        events = build_feed(db, FeedSchedule(limit=10))
        assert len({e.cve_id for e in events}) == 10

    def test_clean_schedule_is_publication_order(self, db):
        events = build_feed(db, _clean_schedule(limit=20))
        records = sorted(db.all(), key=lambda r: (r.year, r.cve_id))[:20]
        assert [e.cve_id for e in events] == [r.cve_id for r in records]
        # exact gaps: k * mean_gap with jitter off
        assert [e.time_s for e in events] == [i * DAY_S for i in range(20)]

    def test_all_batched_collapses_to_start(self, db):
        events = build_feed(db, _clean_schedule(batch_probability=1.0,
                                                start_s=100.0, limit=15))
        assert all(e.time_s == 100.0 for e in events)

    def test_all_duplicated_doubles_the_feed(self, db):
        events = build_feed(db, _clean_schedule(duplicate_probability=1.0,
                                                limit=15))
        originals = [e for e in events if not e.duplicate]
        duplicates = [e for e in events if e.duplicate]
        assert len(originals) == len(duplicates) == 15
        first_seen = {e.cve_id: e.time_s for e in originals}
        assert all(d.time_s > first_seen[d.cve_id] for d in duplicates)

    def test_inversions_reported(self, db):
        events = build_feed(db, _clean_schedule(
            out_of_order_probability=1.0, limit=20))
        stats = feed_statistics(events, db)
        assert stats["out_of_order"] > 0

    def test_statistics_of_clean_feed(self, db):
        events = build_feed(db, _clean_schedule(limit=20))
        stats = feed_statistics(events, db)
        assert stats["advisories"] == 20
        assert stats["duplicates"] == 0
        assert stats["batched_pairs"] == 0
        assert stats["out_of_order"] == 0
        assert stats["first_at_s"] == 0.0
        assert stats["last_at_s"] == 19 * DAY_S

    def test_empty_feed_rejected(self, db):
        with pytest.raises(SentinelError):
            build_feed(VulnerabilityDatabase([]), FeedSchedule())


class TestInventory:
    def test_exposure_integral_is_exact(self):
        inv = FleetInventory({"a": "xen", "b": "xen", "c": "xen",
                              "d": "kvm"})
        flaw = _record("CVE-X", {"xen"})
        inv.open_cve(0.0, flaw)
        assert inv.exposure_count("CVE-X") == 3
        # 3 exposed hosts for 100 s, then one moves off xen
        inv.commit_host(100.0, "a", "kvm")
        assert inv.exposure_count("CVE-X") == 2
        # 2 exposed hosts for another 100 s, then the patch closes it
        inv.close_cve(200.0, "CVE-X")
        assert inv.exposure_host_days("CVE-X") == \
            pytest.approx((3 * 100 + 2 * 100) / DAY_S)
        # closed flaws stop accruing
        inv.advance(1000.0)
        assert inv.exposure_host_days("CVE-X") == \
            pytest.approx(500 / DAY_S)

    def test_commits_can_raise_exposure(self):
        inv = FleetInventory({"a": "xen", "b": "kvm"})
        inv.open_cve(0.0, _record("CVE-K", {"kvm"}))
        assert inv.exposure_count("CVE-K") == 1
        inv.commit_host(10.0, "a", "kvm")
        assert inv.exposure_count("CVE-K") == 2
        inv.close_cve(20.0, "CVE-K")
        assert inv.exposure_host_days("CVE-K") == \
            pytest.approx((1 * 10 + 2 * 10) / DAY_S)

    def test_time_cannot_go_backwards(self):
        inv = FleetInventory({"a": "xen"})
        inv.advance(100.0)
        with pytest.raises(SentinelError):
            inv.advance(99.0)

    def test_double_open_and_blind_close_rejected(self):
        inv = FleetInventory({"a": "xen"})
        flaw = _record("CVE-X", {"xen"})
        inv.open_cve(0.0, flaw)
        with pytest.raises(SentinelError):
            inv.open_cve(1.0, flaw)
        with pytest.raises(SentinelError):
            inv.close_cve(1.0, "CVE-NEVER-OPENED")

    def test_unknown_host_rejected(self):
        inv = FleetInventory({"a": "xen"})
        with pytest.raises(SentinelError):
            inv.kind_of("ghost")
        with pytest.raises(SentinelError):
            inv.commit_host(0.0, "ghost", "kvm")

    def test_kinds_and_snapshot_sorted(self):
        inv = FleetInventory({"b": "kvm", "a": "xen", "c": "xen"})
        assert inv.kinds() == {"kvm": ["b"], "xen": ["a", "c"]}
        snapshot = inv.snapshot()
        assert list(snapshot["hosts"]) == ["a", "b", "c"]
        assert snapshot["open_cves"] == []


class TestPolicy:
    def test_severity_gate(self, db):
        policy = ResponsePolicy(PolicyConfig(), db, ("xen", "kvm"))
        critical = db.get("CVE-2016-6258")  # xen critical
        medium = db.get("CVE-2015-8104")    # common medium
        assert policy.should_respond(critical, "xen")
        assert not policy.should_respond(critical, "kvm")  # unaffected
        assert not policy.should_respond(medium, "xen")    # below gate

    def test_medium_gate_opens_to_medium_flaws(self, db):
        policy = ResponsePolicy(PolicyConfig(severity_gate="medium"),
                                db, ("xen", "kvm"))
        assert policy.should_respond(db.get("CVE-2015-8104"), "xen")

    def test_choose_target_pool_order_breaks_ties(self):
        # One xen-only flaw: kvm and nova escape it equally, so strict
        # pool order decides.
        local = VulnerabilityDatabase([_record("CVE-A", {"xen"})])
        policy = ResponsePolicy(PolicyConfig(), local,
                                ("xen", "kvm", "nova"))
        choice = policy.choose_target("xen", ["CVE-A"])
        assert choice.target == "kvm"
        flipped = ResponsePolicy(PolicyConfig(), local,
                                 ("xen", "nova", "kvm"))
        assert flipped.choose_target("xen", ["CVE-A"]).target == "nova"

    def test_choose_target_blocks_vulnerable_candidates(self):
        local = VulnerabilityDatabase([
            _record("CVE-A", {"xen"}),
            _record("CVE-B", {"kvm"}),
        ])
        policy = ResponsePolicy(PolicyConfig(), local,
                                ("xen", "kvm", "nova"))
        choice = policy.choose_target("xen", ["CVE-A", "CVE-B"])
        assert choice.target == "nova"
        assert any(r.startswith("kvm:") for r in choice.rejected)

    def test_choose_target_none_when_common_flaw_pins_pool(self):
        local = VulnerabilityDatabase([
            _record("CVE-EVERYWHERE", {"xen", "kvm"}),
        ])
        policy = ResponsePolicy(PolicyConfig(), local, ("xen", "kvm"))
        assert policy.choose_target("xen", ["CVE-EVERYWHERE"]) is None

    def test_launch_at_maintenance_windows(self, db):
        policy = ResponsePolicy(PolicyConfig(
            maintenance_window_every_s=1000.0,
            maintenance_window_length_s=100.0,
        ), db, ("xen", "kvm"))
        assert policy.launch_at(50.0) == 50.0       # inside the window
        assert policy.launch_at(500.0) == 1000.0    # wait for the next
        assert policy.launch_at(1099.0) == 1099.0   # inside again
        no_windows = ResponsePolicy(PolicyConfig(), db, ("xen", "kvm"))
        assert no_windows.launch_at(12345.0) == 12345.0

    def test_patch_closes_at(self, db):
        policy = ResponsePolicy(PolicyConfig(patch_application_days=2.0),
                                db, ("xen", "kvm"))
        with_timeline = _record("CVE-T", {"xen"}, days_to_patch=10)
        assert policy.patch_closes_at(with_timeline, 0.0) == 12 * DAY_S
        no_timeline = _record("CVE-U", {"xen"}, days_to_patch=None)
        assert policy.patch_closes_at(no_timeline, DAY_S) == \
            DAY_S + 62 * DAY_S

    def test_bad_policy_config_rejected(self):
        with pytest.raises(SentinelError):
            PolicyConfig(severity_gate="catastrophic")
        with pytest.raises(SentinelError):
            PolicyConfig(patch_application_days=-1.0)
        with pytest.raises(SentinelError):
            PolicyConfig(maintenance_window_every_s=100.0)  # no length
        with pytest.raises(SentinelError):
            PolicyConfig(maintenance_window_every_s=100.0,
                         maintenance_window_length_s=200.0)
        with pytest.raises(SentinelError):
            PolicyConfig(max_concurrent_campaigns=0)


class TestSentinelConfig:
    def test_payload_roundtrip(self):
        config = SentinelConfig(
            hosts=6, pool=("xen", "kvm", "nova"),
            feed=FeedSchedule(seed=9, limit=12),
            policy=PolicyConfig(severity_gate="medium"),
        )
        assert SentinelConfig.from_payload(config.to_payload()) == config

    def test_validation(self):
        with pytest.raises(SentinelError):
            SentinelConfig(hosts=0)
        with pytest.raises(SentinelError):
            SentinelConfig(current_hypervisor="esxi")
        with pytest.raises(SentinelError):
            SentinelConfig(policy=PolicyConfig(
                preferred_hypervisor="nova"))  # not in the default pool


def _small_config(**overrides):
    defaults = dict(
        hosts=6, vms_per_host=4, group_size=2, seed=11,
        feed=FeedSchedule(seed=11, limit=40, mean_gap_days=7.0),
    )
    defaults.update(overrides)
    return SentinelConfig(**defaults)


class TestSentinelRun:
    @pytest.fixture(scope="class")
    def report(self):
        return Sentinel(_small_config()).run()

    def test_every_cve_resolves(self, report):
        document = report.to_dict()
        assert document["counters"]["disclosures"] > 0
        for cve in document["cves"]:
            assert cve["remediation"] in ("not-exposed", "transplant",
                                          "patch")
            assert cve["window_days"] is not None
        assert document["inventory"]["open_cves"] == []

    def test_rerun_byte_identical(self, report):
        again = Sentinel(_small_config()).run()
        assert again.to_json() == report.to_json()

    def test_campaign_indices_are_dense_and_referenced(self, report):
        document = report.to_dict()
        campaigns = document["campaigns"]
        assert [c["index"] for c in campaigns] == list(range(len(campaigns)))
        for cve in document["cves"]:
            for index in cve["campaigns"]:
                assert campaigns[index]["trigger_cve"] == cve["cve_id"]

    def test_transplant_windows_beat_patch_cycle(self, report):
        windows = report.to_dict()["windows"]
        transplant = windows["transplant_percentiles_days"]
        patch = windows["patch_cycle_percentiles_days"]
        assert windows["transplant_count"] > 0
        assert transplant["p50"] < patch["p50"]
        assert transplant["max"] < patch["max"]

    def test_counters_match_campaign_records(self, report):
        document = report.to_dict()
        kinds = [c["kind"] for c in document["campaigns"]]
        counters = document["counters"]
        assert kinds.count("response") == counters["campaigns_launched"]
        assert kinds.count("return") == counters["returns_launched"]

    def test_metrics_registry_population(self, report):
        from repro.obs import MetricsRegistry

        registry = report.report_into(MetricsRegistry())
        snapshot = registry.snapshot()["metrics"]
        assert snapshot["sentinel_disclosures_total"]["value"] == \
            report.counters["disclosures"]
        assert "sentinel_cve_window_seconds" in snapshot

    def test_different_seed_differs(self, report):
        other = Sentinel(_small_config(
            seed=12, feed=FeedSchedule(seed=12, limit=40))).run()
        assert other.to_json() != report.to_json()


class TestSentinelWorkers:
    def test_worker_pool_output_byte_identical(self):
        from repro.par import run_sentinel

        payload = {"config": _small_config().to_payload()}
        serial = run_sentinel(payload, workers=1)
        parallel = run_sentinel(payload, workers=2)
        assert json.dumps(serial, sort_keys=True) == \
            json.dumps(parallel, sort_keys=True)
        inline = Sentinel(_small_config()).run()
        assert serial["document"] == inline.to_dict()


class TestSentinelJournal:
    def test_journal_files_and_identical_report(self, tmp_path):
        baseline = Sentinel(_small_config()).run()
        journaled = Sentinel(_small_config(),
                             journal_dir=str(tmp_path)).run()
        assert journaled.to_json() == baseline.to_json()
        journals = sorted(p.name for p in tmp_path.iterdir())
        launched = [c for c in baseline.to_dict()["campaigns"]
                    if c["launched_at_s"] is not None]
        assert journals == [f"campaign-{c['index']:03d}.journal"
                            for c in launched]


class TestPreemption:
    """The overlapping-disclosure scenario: a second critical flaw lands
    on the first response's target while its campaign is in flight."""

    def _run(self, gap_days):
        config = SentinelConfig(
            hosts=4, vms_per_host=4, group_size=2, seed=7,
            current_hypervisor="xen", pool=("xen", "kvm", "nova"),
            feed=FeedSchedule(seed=7, mean_gap_days=gap_days, jitter=0.0,
                              batch_probability=0.0,
                              duplicate_probability=0.0,
                              out_of_order_probability=0.0),
        )
        return Sentinel(config, db=PREEMPT_DB).run().to_dict()

    def test_mid_campaign_preemption_and_readvice(self):
        # 17 s gap: the xen->kvm response has committed some hosts when
        # the kvm flaw drops; the rest must be cancelled and re-advised.
        document = self._run(gap_days=0.0002)
        counters = document["counters"]
        assert counters["preemptions"] == 1
        first = document["campaigns"][0]
        assert first["kind"] == "response"
        assert first["target"] == "kvm"
        assert first["preempted_by"] == "CVE-2021-0002"
        assert first["preempted_at_s"] is not None
        assert 0 < first["hosts_remediated"] < first["hosts"]
        # Re-advice routes the remaining xen hosts around the flawed kvm,
        # and the hosts stranded on kvm get their own response.
        followups = {(c["source"], c["target"])
                     for c in document["campaigns"]
                     if c["kind"] == "response" and c["index"] > 0}
        assert ("xen", "nova") in followups
        assert ("kvm", "nova") in followups
        # Everyone ends up remediated by transplant, then returns home.
        for cve in document["cves"]:
            assert cve["remediation"] == "transplant"
        assert document["campaigns"][-1]["kind"] == "return"
        fleet = document["inventory"]["hosts"]
        assert all(h["kind"] == "xen" for h in fleet.values())

    def test_preemption_before_any_commit_cancels_whole_campaign(self):
        # 8 s gap: the flaw on the target lands before the first commit;
        # the campaign is cancelled outright and the target flaw never
        # gains an exposed host.
        document = self._run(gap_days=0.0001)
        assert document["counters"]["preemptions"] == 1
        first = document["campaigns"][0]
        assert first["hosts_remediated"] == 0
        assert first["preempted_by"] == "CVE-2021-0002"
        by_id = {c["cve_id"]: c for c in document["cves"]}
        assert by_id["CVE-2021-0002"]["remediation"] == "not-exposed"
        assert by_id["CVE-2021-0002"]["exposure_host_days"] == 0.0
        assert by_id["CVE-2021-0001"]["remediation"] == "transplant"

    def test_wide_gap_needs_no_preemption(self):
        document = self._run(gap_days=1.0)
        assert document["counters"]["preemptions"] == 0
        for cve in document["cves"]:
            assert cve["remediation"] == "transplant"


class TestResidual:
    def test_common_flaw_rides_the_patch_cycle(self):
        local = VulnerabilityDatabase([
            _record("CVE-COMMON", {"xen", "kvm"}),
        ])
        config = SentinelConfig(
            hosts=4, vms_per_host=4, group_size=2, seed=3,
            feed=FeedSchedule(seed=3, mean_gap_days=1.0),
        )
        document = Sentinel(config, db=local).run().to_dict()
        cve = document["cves"][0]
        assert cve["remediation"] == "patch"
        assert cve["residual"] is True
        assert cve["window_days"] == pytest.approx(12.0)  # 10 + 2 app
        assert document["counters"]["campaigns_launched"] == 0
        assert document["counters"]["residual_unresolved"] >= 1


class TestTraceBuilder:
    def test_trace_sentinel_spans(self):
        from repro.obs import Tracer, trace_sentinel

        tracer = Tracer()
        report = Sentinel(_small_config(), tracer=tracer).run()
        document = json.loads(tracer.to_chrome_trace())
        names = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert any(e["name"] == "feed replay" for e in names)
        # track "cve/<id>" exports as process "cve", thread "<id>"
        cve_tracks = {e["args"]["name"]
                      for e in document["traceEvents"]
                      if e["name"] == "thread_name"
                      and e["args"]["name"].startswith("CVE-")}
        assert len(cve_tracks) == len(report.cves)
