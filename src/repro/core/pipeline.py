"""Staged transplant pipeline — the one cost path for per-host execution.

Every transplant mechanism decomposes into the same six stages::

    quiesce -> capture -> translate -> transfer -> restore -> verify

* **InPlaceTP** (Fig. 3): quiesce pauses the guests (free — the kexec
  image was staged ahead of time), capture builds PRAM while guests still
  run (prepare-ahead, §4.2.5), translate turns VM_i State into UISR,
  transfer is the kexec micro-reboot, restore rebuilds the target's
  domains from UISR/PRAM, verify is the operator's post-transplant check.
  Downtime = translate + transfer + restore (§5.2).
* **MigrationTP** (§3.3): quiesce is connection setup + the first memory
  scan, capture is the iterative pre-copy rounds, translate is the UISR
  proxy encode/decode pair, transfer ships the residual dirty set with
  the VM paused, restore is the destination VMM's activation.  Downtime =
  translate + transfer + restore — the stop-and-copy.

The planners (:mod:`repro.cluster.executor`), the fleet control plane
(:mod:`repro.fleet.controller`) and the orchestrator policy all derive
their per-action durations from these plans, so fleet-scale numbers are
*the same floats* `HyperTP.upgrade_host` predicts — there is no second,
silently drifting cost path (the pre-refactor drift this module removed:
three consumers each re-summed the phase helpers in their own order).

Float discipline: a :class:`StagePlan`'s ``total_s`` is composed in the
mechanism's calibrated association — InPlaceTP folds the stages left to
right, MigrationTP groups busy-time and downtime before adding them.
The two associations differ by 1 ulp on thousands of real campaign
actions, so each builder reproduces its historical summation tree
exactly and every committed artifact stays byte-identical.
"""

import enum
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import TransplantError
from repro.hw.machine import CLUSTER_NODE_SPEC, Machine, MachineSpec
from repro.hw.memory import PAGE_2M
from repro.hypervisors.base import HypervisorKind
from repro.obs import Span
from repro.sim.resources import effective_tcp_rate, gigabits
from repro.core.migration import plan_precopy
from repro.core.timings import DEFAULT_COST_MODEL, CostModel


def fabric_link_rate(node_spec: MachineSpec = CLUSTER_NODE_SPEC) -> float:
    """Effective bytes/s of the shared migration fabric for ``node_spec``."""
    return effective_tcp_rate(gigabits(node_spec.nic_gbps))


class Stage(enum.Enum):
    """The common stage protocol both mechanisms implement."""

    QUIESCE = "quiesce"
    CAPTURE = "capture"
    TRANSLATE = "translate"
    TRANSFER = "transfer"
    RESTORE = "restore"
    VERIFY = "verify"


STAGE_ORDER: Tuple[Stage, ...] = (
    Stage.QUIESCE, Stage.CAPTURE, Stage.TRANSLATE,
    Stage.TRANSFER, Stage.RESTORE, Stage.VERIFY,
)


@dataclass(frozen=True)
class StageCost:
    """One stage's wall-clock contribution to a host or VM transplant."""

    stage: Stage
    duration_s: float
    #: True when the affected guests are paused for the stage's duration
    downtime: bool
    detail: str = ""


@dataclass(frozen=True)
class VerifySpec:
    """Post-transplant verification cost (fleet SLO check, §4.5.2)."""

    fixed_s: float = 0.0
    per_vm_s: float = 0.0

    def duration_s(self, vm_count: int) -> float:
        return self.fixed_s + self.per_vm_s * vm_count


@dataclass(frozen=True)
class StagePlan:
    """A mechanism's staged cost breakdown for one host or VM.

    ``execute_s`` covers quiesce through restore — what the executing
    host is busy for; ``total_s`` additionally includes verification.
    Both are composed by the mechanism builder in its calibrated
    float-association (see the module docstring), so consumers must use
    these fields rather than re-summing ``stages`` in their own order.
    """

    mechanism: str
    subject: str
    stages: Tuple[StageCost, ...]
    total_s: float
    execute_s: float
    downtime_s: float

    def __post_init__(self):
        seen = [s.stage for s in self.stages]
        if seen != [s for s in STAGE_ORDER if s in seen]:
            raise TransplantError(
                f"{self.subject}: stages out of protocol order: "
                f"{[s.value for s in seen]}"
            )
        loose = sum(s.duration_s for s in self.stages)
        if not math.isclose(loose, self.total_s, rel_tol=1e-9, abs_tol=1e-12):
            raise TransplantError(
                f"{self.subject}: total_s {self.total_s!r} is not a "
                f"re-association of the stage sum {loose!r}"
            )

    def stage_s(self, stage: Stage) -> float:
        for cost in self.stages:
            if cost.stage is stage:
                return cost.duration_s
        return 0.0

    @property
    def by_stage(self) -> Dict[str, float]:
        return {cost.stage.value: cost.duration_s for cost in self.stages}

    def spans(self, start_s: float, track: str) -> List[Span]:
        """Render the plan as obs spans, one per non-empty stage."""
        spans: List[Span] = []
        now = start_s
        for cost in self.stages:
            if cost.duration_s <= 0.0:
                continue
            spans.append(Span(
                cost.stage.value, "downtime" if cost.downtime else "stage",
                now, now + cost.duration_s, track=track,
                args={"mechanism": self.mechanism, "detail": cost.detail},
            ))
            now += cost.duration_s
        return spans


def _fold(durations: Sequence[float]) -> float:
    total = 0.0
    for duration in durations:
        total += duration
    return total


class InPlacePipeline:
    """Stage costs of InPlaceTP on one machine shape.

    ``plan_host`` models the cluster planner's uniform-VM host (what
    :class:`repro.cluster.plan.InPlaceAction` describes); ``plan_shapes``
    takes explicit per-VM ``(vcpus, entries)`` shapes for a live
    population (what the orchestrator policy predicts downtime from).
    """

    mechanism = "inplace"

    def __init__(self, machine: Machine,
                 cost: CostModel = DEFAULT_COST_MODEL,
                 target_kind: HypervisorKind = HypervisorKind.KVM,
                 verify: Optional[VerifySpec] = None):
        self.machine = machine
        self.cost = cost
        self.target_kind = target_kind
        self.verify = verify

    def plan_host(self, subject: str, vm_count: int,
                  total_memory_bytes: int) -> StagePlan:
        """Stage costs for a host carrying ``vm_count`` uniform VMs."""
        entries_per_vm = (
            self.cost.entries_for(
                total_memory_bytes // max(1, vm_count), PAGE_2M,
                huge_pages=True,
            )
            if vm_count else 0
        )
        entry_counts = [entries_per_vm] * vm_count
        vm_shapes = [(1, entries_per_vm)] * vm_count
        capture = (self.cost.pram_phase_s(self.machine, entry_counts)
                   if vm_count else 0.0)
        return self._build(subject, vm_count, vm_shapes,
                           sum(entry_counts), capture)

    def plan_shapes(self, subject: str, vm_shapes: Sequence,
                    entry_counts: Optional[Sequence[int]] = None) -> StagePlan:
        """Stage costs for an explicit ``(vcpus, entries)`` population."""
        if entry_counts is None:
            entry_counts = [entries for _, entries in vm_shapes]
        capture = (self.cost.pram_phase_s(self.machine, list(entry_counts))
                   if entry_counts else 0.0)
        return self._build(subject, len(vm_shapes), list(vm_shapes),
                           sum(entry_counts), capture)

    def _build(self, subject: str, vm_count: int, vm_shapes,
               total_entries: int, capture: float) -> StagePlan:
        translate = self.cost.translate_phase_s(self.machine, vm_shapes)
        transfer = self.cost.reboot_phase_s(self.machine, self.target_kind,
                                            total_entries)
        restore = self.cost.restore_phase_s(self.machine, vm_shapes)
        verify = self.verify.duration_s(vm_count) if self.verify else 0.0
        stages = (
            StageCost(Stage.QUIESCE, 0.0, downtime=False,
                      detail="pause guests (kexec image staged ahead)"),
            StageCost(Stage.CAPTURE, capture, downtime=False,
                      detail="PRAM construction, prepare-ahead"),
            StageCost(Stage.TRANSLATE, translate, downtime=True,
                      detail="VM_i State -> UISR"),
            StageCost(Stage.TRANSFER, transfer, downtime=True,
                      detail=f"kexec micro-reboot into "
                             f"{self.target_kind.value}"),
            StageCost(Stage.RESTORE, restore, downtime=True,
                      detail="UISR -> target domains + PRAM relink"),
            StageCost(Stage.VERIFY, verify, downtime=False,
                      detail="post-transplant host verification"),
        )
        # InPlaceTP's calibrated association is the plain left fold
        # (pram + translation + reboot + restoration, then verify).
        execute = _fold([s.duration_s for s in stages[:-1]])
        total = _fold([s.duration_s for s in stages])
        downtime = _fold([s.duration_s for s in stages if s.downtime])
        return StagePlan(mechanism=self.mechanism, subject=subject,
                         stages=stages, total_s=total, execute_s=execute,
                         downtime_s=downtime)


class MigrationPipeline:
    """Stage costs of MigrationTP for one VM over a shared fabric.

    ``charge_proxy`` switches on the 2x ``proxy_translate_s`` UISR term
    the mechanism simulation charges (~1.6 ms).  The planners leave it
    off: the fleet/cluster cost model is calibrated against Fig. 13 and
    treats the proxy pair as measurement noise — pre-refactor this was
    an undocumented divergence between two formulas in different layers;
    now it is one flag in one place.
    """

    mechanism = "migration"

    def __init__(self, link_rate: float,
                 cost: CostModel = DEFAULT_COST_MODEL,
                 target_kind: HypervisorKind = HypervisorKind.KVM,
                 charge_proxy: bool = False):
        if link_rate <= 0:
            raise TransplantError(
                f"migration pipeline needs a positive link rate, "
                f"got {link_rate}"
            )
        self.link_rate = link_rate
        self.cost = cost
        self.target_kind = target_kind
        self.charge_proxy = charge_proxy

    def plan_vm(self, subject: str, memory_bytes: int,
                dirty_rate_bytes_s: float, vcpus: int = 1) -> StagePlan:
        rounds = plan_precopy(memory_bytes, self.link_rate,
                              dirty_rate_bytes_s, self.cost)
        capture = sum(r.duration_s for r in rounds)
        residual = rounds[-1].dirty_after_bytes
        transfer = residual / self.link_rate
        restore = self.cost.stopcopy_overhead_s(self.target_kind, vcpus)
        translate = (2 * self.cost.proxy_translate_s
                     if self.charge_proxy else 0.0)
        stages = (
            StageCost(Stage.QUIESCE, self.cost.migration_setup_s,
                      downtime=False,
                      detail="connection + negotiation + first scan"),
            StageCost(Stage.CAPTURE, capture, downtime=False,
                      detail=f"{len(rounds)} pre-copy round(s)"),
            StageCost(Stage.TRANSLATE, translate, downtime=True,
                      detail="UISR proxy encode/decode"),
            StageCost(Stage.TRANSFER, transfer, downtime=True,
                      detail=f"stop-and-copy residual "
                             f"({residual} bytes)"),
            StageCost(Stage.RESTORE, restore, downtime=True,
                      detail=f"{self.target_kind.value} destination "
                             f"activation"),
            StageCost(Stage.VERIFY, 0.0, downtime=False,
                      detail="resume on destination"),
        )
        # MigrationTP's calibrated association groups busy time (setup +
        # pre-copy) and downtime (residual copy + activation) before
        # adding the two — the historical precopy/downtime split.
        busy = _fold([s.duration_s for s in stages if not s.downtime])
        downtime = _fold([s.duration_s for s in stages if s.downtime])
        total = busy + downtime
        return StagePlan(mechanism=self.mechanism, subject=subject,
                         stages=stages, total_s=total, execute_s=total,
                         downtime_s=downtime)


class TransplantPipelines:
    """Both mechanism pipelines for one host/fabric shape, cached per
    target hypervisor (the fleet needs the source direction for
    ReHype-style rollback)."""

    def __init__(self, machine: Optional[Machine] = None,
                 node_spec: MachineSpec = CLUSTER_NODE_SPEC,
                 link_rate: Optional[float] = None,
                 cost: CostModel = DEFAULT_COST_MODEL,
                 verify: Optional[VerifySpec] = None):
        self.machine = machine if machine is not None else Machine(
            node_spec, name="pipeline-reference")
        self.link_rate = (link_rate if link_rate is not None
                          else fabric_link_rate(node_spec))
        self.cost = cost
        self.verify = verify
        self._inplace: Dict[HypervisorKind, InPlacePipeline] = {}
        self._migration: Dict[HypervisorKind, MigrationPipeline] = {}

    def inplace(self, target_kind: HypervisorKind) -> InPlacePipeline:
        if target_kind not in self._inplace:
            self._inplace[target_kind] = InPlacePipeline(
                self.machine, self.cost, target_kind, verify=self.verify)
        return self._inplace[target_kind]

    def migration(self, target_kind: HypervisorKind) -> MigrationPipeline:
        if target_kind not in self._migration:
            self._migration[target_kind] = MigrationPipeline(
                self.link_rate, self.cost, target_kind)
        return self._migration[target_kind]


@dataclass(frozen=True)
class EvacuationSpec:
    """One VM to move off a host via MigrationTP before its reboot."""

    vm_name: str
    memory_bytes: int
    dirty_rate_bytes_s: float
    vcpus: int = 1


@dataclass(frozen=True)
class HostUpgradePlan:
    """The staged plan for upgrading one whole host (§4.5.2).

    ``evacuations`` are the MigrationTP stage plans for the VMs that
    cannot ride; ``inplace`` is the InPlaceTP stage plan for the host
    with its remaining riders.
    """

    host: str
    target: str
    evacuations: Tuple[StagePlan, ...]
    inplace: StagePlan

    @property
    def execute_s(self) -> float:
        """The host's transplant busy time (quiesce through restore)."""
        return self.inplace.execute_s

    @property
    def verify_s(self) -> float:
        return self.inplace.stage_s(Stage.VERIFY)

    @property
    def evacuation_s(self) -> float:
        return sum(plan.total_s for plan in self.evacuations)

    @property
    def total_s(self) -> float:
        return self.evacuation_s + self.inplace.total_s

    @property
    def worst_downtime_s(self) -> float:
        downtimes = [plan.downtime_s for plan in self.evacuations]
        downtimes.append(self.inplace.downtime_s)
        return max(downtimes)
