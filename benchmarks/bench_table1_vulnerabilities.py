"""Table 1 — critical and medium vulnerabilities per year in Xen and KVM.

Regenerates the per-year counts from the embedded dataset, plus the §2.1
component breakdowns and the §2.2 KVM vulnerability-window statistics.
"""

from repro.bench.report import format_table, print_experiment
from repro.vulndb.analysis import category_breakdown, totals, yearly_counts
from repro.vulndb.data import load_default_database
from repro.vulndb.timeline import window_statistics


def build_table1():
    db = load_default_database()
    rows = []
    for row in yearly_counts(db):
        rows.append([row.year, row.xen_critical, row.xen_medium,
                     row.kvm_critical, row.kvm_medium,
                     row.common_critical, row.common_medium])
    total = totals(db)
    rows.append(["Total", total.xen_critical, total.xen_medium,
                 total.kvm_critical, total.kvm_medium,
                 total.common_critical, total.common_medium])
    return db, rows


def render():
    db, rows = build_table1()
    body = format_table(
        ["Year", "Xen crit.", "Xen med.", "KVM crit.", "KVM med.",
         "Common crit.", "Common med."],
        rows,
    )
    xen_shares = category_breakdown(db, "xen")
    kvm_shares = category_breakdown(db, "kvm")
    stats = window_statistics(db, "kvm")
    extra = [
        "",
        "Xen critical components: "
        + ", ".join(f"{k} {v:.1%}" for k, v in sorted(xen_shares.items())),
        "KVM critical components: "
        + ", ".join(f"{k} {v:.1%}" for k, v in sorted(kvm_shares.items())),
        f"KVM windows: n={stats.count} mean={stats.mean_days:.0f}d "
        f"min={stats.min_days}d max={stats.max_days}d "
        f">60d={stats.over_60_fraction:.0%}",
        "(paper: mean 71d, min 8d, max 180d, 60% over 60d)",
    ]
    return body + "\n" + "\n".join(extra)


def test_table1_vulnerabilities(benchmark):
    body = benchmark(render)
    print_experiment("Table 1", "vulnerabilities per year in Xen and KVM",
                     body)


if __name__ == "__main__":
    print_experiment("Table 1", "vulnerabilities per year in Xen and KVM",
                     render())
