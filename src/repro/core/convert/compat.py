"""Cross-hypervisor compatibility fixups.

The paper found that while Xen and KVM VM states are largely similar (both
ride hardware virtualization), specific virtual devices need fixes to keep
functioning on the new hypervisor (§4.2.1).  The flagship example is the
IOAPIC: Xen emulates 48 pins, KVM 24.  The prototype simply disconnects the
upper pins during Xen->KVM transplant — legacy ISA routes all live in the
low 16 pins, so tested applications are unaffected — and re-grows the table
with disconnected pins for KVM->Xen.
"""

from typing import List

from repro.errors import UISRError
from repro.guest.devices import IOAPICPin, IOAPICState, PlatformState


def ioapic_shrink_to(ioapic: IOAPICState, pins: int) -> IOAPICState:
    """Drop redirection entries above ``pins`` (Xen 48 -> KVM 24).

    Refuses to drop a pin that carries a live (unmasked) route: that would
    silently break a device's interrupt delivery rather than merely removing
    unused lines.
    """
    if pins <= 0:
        raise UISRError(f"cannot shrink IOAPIC to {pins} pins")
    if len(ioapic.pins) < pins:
        raise UISRError(
            f"IOAPIC has {len(ioapic.pins)} pins, cannot shrink to {pins}"
        )
    for index, pin in enumerate(ioapic.pins[pins:], start=pins):
        if not pin.masked and pin.vector:
            raise UISRError(
                f"IOAPIC pin {index} carries a live route (vector "
                f"{pin.vector:#x}); refusing to disconnect it"
            )
    return IOAPICState(pins=list(ioapic.pins[:pins]), ioapic_id=ioapic.ioapic_id)


def ioapic_grow_to(ioapic: IOAPICState, pins: int) -> IOAPICState:
    """Pad the redirection table with disconnected pins (KVM 24 -> Xen 48)."""
    if len(ioapic.pins) > pins:
        raise UISRError(
            f"IOAPIC has {len(ioapic.pins)} pins, cannot grow to {pins}"
        )
    padded: List[IOAPICPin] = list(ioapic.pins)
    padded.extend(IOAPICPin() for _ in range(pins - len(ioapic.pins)))
    return IOAPICState(pins=padded, ioapic_id=ioapic.ioapic_id)


def apply_platform_fixups(platform: PlatformState,
                          target_ioapic_pins: int) -> PlatformState:
    """Adapt a platform's devices to the target hypervisor's models.

    Returns a new :class:`PlatformState`; the input is not mutated (the
    source hypervisor may still need its own view if the transplant aborts).
    """
    current = platform.ioapic.pin_count
    if current == target_ioapic_pins:
        ioapic = IOAPICState(pins=list(platform.ioapic.pins),
                             ioapic_id=platform.ioapic.ioapic_id)
    elif current > target_ioapic_pins:
        ioapic = ioapic_shrink_to(platform.ioapic, target_ioapic_pins)
    else:
        ioapic = ioapic_grow_to(platform.ioapic, target_ioapic_pins)
    return PlatformState(
        lapics=list(platform.lapics),
        ioapic=ioapic,
        pit=platform.pit,
        mtrr=platform.mtrr,
        xsave=list(platform.xsave),
    )
