"""Event-driven emergency-response control plane.

Closes the paper's loop end to end: a critical CVE lands in the
:mod:`repro.vulndb` feed, the advisor picks the non-vulnerable target
hypervisor, the BtrPlace-style planner shards the fleet into waves, and a
per-host state machine drives every host ``PENDING -> EVACUATING ->
TRANSPLANTING -> VERIFYING -> DONE`` on the discrete-event engine — with
injectable per-phase failures, bounded exponential-backoff retries, and
rollback to the source hypervisor on exhaustion.  The output is the fleet
vulnerability window the paper's Fig. 13 argues about, measured rather
than summed.

Scalability notes: every host is one generator process; contended
resources (the shared migration fabric, per-node capacity slots, per-VM
move locks, the admission cap) are FIFO wait queues that wake exactly one
waiter per release, so a campaign schedules O(events log events) with no
per-host polling.  The degenerate configuration — no failures,
``sequential_groups=True``, unbounded concurrency — reproduces the
:class:`repro.cluster.upgrade.UpgradeCampaign` (Fig. 13) total because it
times the identical plan with the identical staged pipeline
(:mod:`repro.core.pipeline`) — fleet per-host durations are the same
floats ``HyperTP.upgrade_host`` composes, stage by stage.
"""

import gc
import hashlib
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.errors import FleetError
from repro.cluster.btrplace import BtrPlacePlanner
from repro.cluster.executor import cluster_link_rate
from repro.cluster.model import Cluster, build_paper_cluster
from repro.cluster.plan import InPlaceAction, MigrationAction
from repro.core.mechanisms import (
    HostDecision,
    MechanismPolicy,
    VMProfile,
    decide_fleet,
    mechanism_mix,
)
from repro.core.pipeline import Stage, StagePlan, TransplantPipelines, VerifySpec
from repro.core.timings import DEFAULT_COST_MODEL, CostModel
from repro.fleet.failures import FailureInjector, FailurePhase, RetryPolicy
from repro.fleet.metrics import FleetMetrics, collect_metrics
from repro.fleet.simsync import FifoSemaphore, FleetProcess, Gate, Latch
from repro.fleet.state import FleetTrace, HostRecord, HostState
from repro.hw.machine import CLUSTER_NODE_SPEC, Machine, MachineSpec
from repro.hypervisors.base import HypervisorKind
from repro.obs import NULL_TRACER, MetricsRegistry, trace_fleet
from repro.sim.clock import SimClock
from repro.sim.engine import Engine
from repro.vulndb.advisor import TransplantAdvisor
from repro.vulndb.data import VulnerabilityDatabase, load_default_database


@dataclass(frozen=True)
class FleetConfig:
    """Campaign shape and control-plane knobs."""

    hosts: int = 10
    vms_per_host: int = 10
    inplace_fraction: float = 0.8
    group_size: int = 2
    seed: int = 42
    #: max hosts simultaneously in flight (None = unbounded)
    concurrency: Optional[int] = 8
    #: strict Fig. 13 semantics: wave n+1 waits for wave n, and a wave's
    #: micro-reboots wait for all of the wave's evacuations
    sequential_groups: bool = False
    #: parallel streams on the shared fabric (1 = paper's serialized model)
    migration_streams: int = 1
    stall_timeout_s: float = 60.0
    kexec_watchdog_s: float = 30.0
    verify_fixed_s: float = 0.01
    verify_per_vm_s: float = 0.002
    #: per-host mechanism selection (§4.5.2): inplace / migration /
    #: hybrid / auto — see :mod:`repro.core.mechanisms`
    mechanism: str = "hybrid"
    trigger_cve: str = "CVE-2016-6258"
    current_hypervisor: str = "xen"
    pool: Tuple[str, ...] = ("xen", "kvm")
    disclosure_at_s: float = 0.0
    #: pin the destination hypervisor instead of asking the advisor.  A
    #: control plane that already scored its target (repro.sentinel) — or
    #: a *return* transplant, where no flaw forces the move — sets this;
    #: None keeps the classic advise-then-transplant path byte-identical.
    target_override: Optional[str] = None

    def __post_init__(self):
        if self.hosts < 1:
            raise FleetError(f"need >= 1 host, got {self.hosts}")
        if self.group_size < 1:
            raise FleetError(f"group size must be >= 1, got {self.group_size}")
        if self.concurrency is not None and self.concurrency < 1:
            raise FleetError(
                f"concurrency must be >= 1 or None, got {self.concurrency}"
            )
        if self.migration_streams < 1:
            raise FleetError(
                f"migration streams must be >= 1, got {self.migration_streams}"
            )
        for name in ("stall_timeout_s", "kexec_watchdog_s",
                     "verify_fixed_s", "verify_per_vm_s", "disclosure_at_s"):
            if getattr(self, name) < 0:
                raise FleetError(f"{name} must be >= 0")
        valid = ("inplace", "migration", "hybrid", "auto")
        if self.mechanism not in valid:
            raise FleetError(
                f"unknown mechanism {self.mechanism!r}; pick from {valid}"
            )
        if self.target_override is not None \
                and self.target_override == self.current_hypervisor:
            raise FleetError(
                f"target override {self.target_override!r} is already the "
                f"current hypervisor"
            )


@dataclass
class _HostPlan:
    """The planner's actions for one host, grouped for its state machine."""

    name: str
    wave: int
    upgrade: InPlaceAction
    # (action, position in the VM's whole-campaign migration chain,
    #  MigrationTP stage plan)
    evacuations: List[Tuple[MigrationAction, int, StagePlan]] = (
        field(default_factory=list))
    initial_vms: List[str] = field(default_factory=list)
    #: InPlaceTP stage plan (verify stage included) for this host
    plan: Optional[StagePlan] = None


class _SlotLedger:
    """Spare-capacity admission control: free VM slots per node.

    A migration reserves a destination slot before touching the fabric and
    frees a source slot once the VM has left; reservations wait FIFO per
    node, so overlapping waves can never overcommit a host even though the
    planner validated capacity only for sequential execution.
    """

    def __init__(self, engine: Engine, free: Dict[str, int]):
        self._engine = engine
        self._free = dict(free)
        self._waiters: Dict[str, Deque[Gate]] = {
            name: deque() for name in free
        }

    def reserve(self, node: str) -> Gate:
        gate = Gate(self._engine)
        if self._free[node] > 0:
            self._free[node] -= 1
            gate.fire()
        else:
            self._waiters[node].append(gate)
        return gate

    def release(self, node: str) -> None:
        waiters = self._waiters[node]
        if waiters:
            waiters.popleft().fire()
        else:
            self._free[node] += 1


class FleetController:
    """Runs one disclosure-to-remediation campaign on the sim engine."""

    def __init__(self, config: Optional[FleetConfig] = None,
                 db: Optional[VulnerabilityDatabase] = None,
                 injector: Optional[FailureInjector] = None,
                 retry: Optional[RetryPolicy] = None,
                 node_spec: MachineSpec = CLUSTER_NODE_SPEC,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 tracer=NULL_TRACER,
                 registry: Optional[MetricsRegistry] = None,
                 journal=None):
        self.config = config = config if config is not None else FleetConfig()
        self.db = db if db is not None else load_default_database()
        self.injector = injector if injector is not None else FailureInjector()
        self.retry = retry if retry is not None else RetryPolicy()
        self.cost = cost_model
        self.tracer = tracer
        self.registry = registry
        # Any object with transition/wave_barrier/checkpoint/commit methods,
        # normally a repro.journal.CampaignJournal.  Duck-typed so the fleet
        # layer never imports repro.journal (which imports fleet lazily).
        self.journal = journal
        self.source_kind = HypervisorKind(config.current_hypervisor)
        if config.target_override is not None:
            # The caller (a policy layer such as repro.sentinel) already
            # validated the destination against its full open-CVE view;
            # re-advising here could silently pick a different target.
            self.advice = None
            self.target_kind = HypervisorKind(config.target_override)
        else:
            advisor = TransplantAdvisor(self.db,
                                        hypervisor_pool=list(config.pool))
            self.advice = advisor.advise_or_raise(
                config.trigger_cve, config.current_hypervisor,
            )
            if not self.advice.transplant_needed:
                raise FleetError(
                    f"{config.trigger_cve} does not require a transplant off "
                    f"{config.current_hypervisor}"
                )
            self.target_kind = HypervisorKind(self.advice.recommended_target)
        self._machine = Machine(node_spec, name="fleet-reference")
        self._link_rate = cluster_link_rate(node_spec)
        # The one cost path: per-host durations come from the same staged
        # pipeline HyperTP.upgrade_host composes, verify stage included.
        self._pipelines = TransplantPipelines(
            machine=self._machine, link_rate=self._link_rate,
            cost=cost_model,
            verify=VerifySpec(config.verify_fixed_s, config.verify_per_vm_s),
        )
        self.policy = MechanismPolicy(config.mechanism)
        #: per-host §4.5.2 decisions, populated by run()
        self.decisions: Dict[str, HostDecision] = {}
        # Populated by run():
        self.trace = FleetTrace(journal=journal)
        self.records: Dict[str, HostRecord] = {}
        self.placement: Dict[str, str] = {}
        #: the hypervisor each host actually runs after the campaign — a
        #: rolled-back host stays on the (vulnerable) source hypervisor
        self.host_hypervisor: Dict[str, str] = {}

    # -- campaign setup ------------------------------------------------------

    def _build_host_plans(self, cluster: Cluster,
                          initial_vms: Dict[str, List[str]],
                          initial_free: Dict[str, int],
                          ) -> List[_HostPlan]:
        # The §4.5.2 decision, per host, on the pristine placement: which
        # VMs evacuate and which ride.  A VM keeps its evacuate/ride class
        # for the whole campaign (re-migrations included), exactly like the
        # legacy inplace_compatible flag the hybrid policy reproduces.
        profiles = {
            name: [VMProfile.from_cluster_vm(cluster.vms[vm]) for vm in vms]
            for name, vms in initial_vms.items()
        }
        self.decisions = decide_fleet(
            self.policy, profiles, initial_free,
            inplace=self._pipelines.inplace(self.target_kind),
            migration=self._pipelines.migration(self.target_kind),
        )
        evacuate_class = {
            vm for decision in self.decisions.values()
            for vm in decision.evacuate
        }
        planner = BtrPlacePlanner(
            cluster, group_size=self.config.group_size,
            rides=lambda vm: vm.name not in evacuate_class,
        )
        plan = planner.plan(apply=True)
        self._waves = len(plan.groups)
        migration_pipeline = self._pipelines.migration(self.target_kind)
        inplace_pipeline = self._pipelines.inplace(self.target_kind)
        chain_counts: Dict[str, int] = {}
        host_plans: Dict[str, _HostPlan] = {}
        for group in plan.groups:
            for upgrade in group.upgrades:
                host_plans[upgrade.node_name] = _HostPlan(
                    name=upgrade.node_name,
                    wave=group.group_index,
                    upgrade=upgrade,
                    initial_vms=list(initial_vms[upgrade.node_name]),
                    plan=inplace_pipeline.plan_host(
                        upgrade.node_name, upgrade.vm_count,
                        upgrade.total_memory_bytes,
                    ),
                )
            for action in group.migrations:
                position = chain_counts.get(action.vm_name, 0)
                chain_counts[action.vm_name] = position + 1
                host_plans[action.source].evacuations.append((
                    action, position,
                    migration_pipeline.plan_vm(
                        action.vm_name, action.memory_bytes,
                        action.workload.dirty_rate_bytes_s,
                    ),
                ))
        self._chain_counts = chain_counts
        return [host_plans[name] for name in sorted(host_plans)]

    def mechanism_mix(self) -> Dict[str, Dict[str, int]]:
        """Resolved per-mechanism host/VM counts (sorted keys)."""
        return mechanism_mix(self.decisions)

    # -- campaign ------------------------------------------------------------

    def run(self) -> FleetMetrics:
        cfg = self.config
        cluster = build_paper_cluster(
            hosts=cfg.hosts, vms_per_host=cfg.vms_per_host,
            inplace_fraction=cfg.inplace_fraction, seed=cfg.seed,
        )
        self._cluster = cluster
        initial_vms = {name: list(node.vms)
                       for name, node in cluster.nodes.items()}
        initial_free = {name: node.free_slots
                        for name, node in cluster.nodes.items()}
        self.placement = {vm.name: vm.node for vm in cluster.vms.values()}
        self.host_hypervisor = {name: self.source_kind.value
                                for name in cluster.nodes}

        host_plans = self._build_host_plans(cluster, initial_vms,
                                            initial_free)
        #: kept for inspection (the fleet/core parity test reads the
        #: stage plans the campaign actually charged)
        self.host_plans = host_plans

        engine = Engine(SimClock(cfg.disclosure_at_s))
        self._engine = engine
        self.tracer.bind_clock(lambda: engine.now)
        self.trace = FleetTrace(journal=self.journal)
        self._ledger = _SlotLedger(engine, initial_free)
        self._link = FifoSemaphore(engine, cfg.migration_streams)
        self._admission = FifoSemaphore(engine, cfg.concurrency)
        self._vm_locks: Dict[str, FifoSemaphore] = {
            vm: FifoSemaphore(engine, 1) for vm in sorted(self._chain_counts)
        }
        self._vm_gates: Dict[str, List[Gate]] = {
            vm: [Gate(engine) for _ in range(count)]
            for vm, count in sorted(self._chain_counts.items())
        }
        self._aborted: Set[str] = set()
        self._streams = {hp.name: self.injector.stream_for(hp.name)
                         for hp in host_plans}
        self._migrations_executed = 0
        # Rolling placement signature for checkpoint digests: a crc32
        # chained over every committed move, in execution order.  The
        # campaign is deterministic, so a resumed run re-executes the
        # same move sequence and lands on the same signature — and the
        # digest commits to the *order* of moves, not just the final
        # placement, without ever serializing the 10k-entry map.
        self._placement_sig = 0

        waves: Dict[int, List[_HostPlan]] = {}
        for hp in host_plans:
            waves.setdefault(hp.wave, []).append(hp)
        self._wave_release = {w: Gate(engine) for w in waves}
        self._wave_done = {w: Latch(engine, len(hps))
                           for w, hps in waves.items()}
        self._evac_latch = {w: Latch(engine, len(hps))
                            for w, hps in waves.items()}
        if self.journal is not None:
            # Subscribed before processes start and before wave chaining, so
            # each barrier record is durable before any waiter wakes on it
            # (gate/latch subscribers run in strict FIFO order) and a wave's
            # "wave-done" record precedes the next wave's "release".
            for w in sorted(waves):
                self._wave_release[w].subscribe(self._journal_barrier(
                    w, "release"))
                self._evac_latch[w].subscribe(self._journal_barrier(
                    w, "evac-done"))
                self._wave_done[w].subscribe(self._journal_barrier(
                    w, "wave-done"))
                self._wave_done[w].subscribe(self._journal_checkpoint)
        if cfg.sequential_groups:
            ordered = sorted(waves)
            self._wave_release[ordered[0]].fire()
            for earlier, later in zip(ordered, ordered[1:]):
                release = self._wave_release[later]
                self._wave_done[earlier].subscribe(release.fire)
        else:
            for gate in self._wave_release.values():
                gate.fire()

        self.records = {}
        processes = []
        for hp in host_plans:
            record = HostRecord(
                name=hp.name, wave=hp.wave,
                vm_count=len(hp.initial_vms),
                planned_migrations=len(hp.evacuations),
                disclosure_at_s=cfg.disclosure_at_s,
            )
            self.records[hp.name] = record
            process = FleetProcess(
                engine, self._host_process(record, hp), name=hp.name,
            )
            processes.append(process.start())
        if self.journal is not None:
            # Journal appends allocate a handful of objects per record,
            # and each collection those allocations trigger walks the
            # campaign's tens of thousands of live generator frames.
            # Freezing the heap here parks everything alive (the frames,
            # the cluster model) outside the collector for the duration
            # of the run, so the collections journaling triggers only
            # scan short-lived record garbage — GC stays on and pays its
            # own way; nothing is deferred onto the caller.
            gc.freeze()
            try:
                self._run_engine(engine, processes)
            finally:
                gc.unfreeze()
        else:
            self._run_engine(engine, processes)

        stuck = [p.name for p in processes if not p.done]
        stuck += [r.name for r in self.records.values()
                  if not r.state.terminal]
        if stuck:
            raise FleetError(f"campaign never terminated for: {sorted(set(stuck))}")
        completed = max(
            (t.time_s for t in self.trace.transitions if t.target.terminal),
            default=cfg.disclosure_at_s,
        )
        if self.tracer.enabled:
            # One campaign -> one trace: turn the (deterministic) transition
            # log into per-host state spans nested under wave envelopes.
            self.tracer.extend(trace_fleet(
                self.trace.transitions,
                host_waves={hp.name: hp.wave for hp in host_plans},
                start_s=cfg.disclosure_at_s,
                end_s=completed,
                campaign=f"campaign {cfg.trigger_cve}",
            ))
        metrics = collect_metrics(
            [self.records[name] for name in sorted(self.records)],
            self.trace,
            trigger_cve=cfg.trigger_cve,
            source_hypervisor=self.source_kind.value,
            target_hypervisor=self.target_kind.value,
            waves=self._waves,
            disclosure_at_s=cfg.disclosure_at_s,
            completed_at_s=completed,
            migrations_executed=self._migrations_executed,
            registry=self.registry,
            # Only a non-default mechanism annotates the document, so
            # hybrid campaigns stay byte-identical to pre-policy runs.
            mechanism=(cfg.mechanism if cfg.mechanism != "hybrid" else None),
            mechanism_mix=(self.mechanism_mix()
                           if cfg.mechanism != "hybrid" else None),
        )
        if self.journal is not None:
            # COMMIT carries a digest of the final recoverable state — the
            # teeth of the resume determinism contract: a resumed campaign
            # whose end state differs from the journaled promise fails
            # closed on the replay byte-compare.  The metrics document is
            # a deterministic function of that state, so it is bound too
            # (and CI additionally cmp-checks the artifacts byte-for-byte).
            self.journal.commit(completed, self._state_digest())
        return metrics

    @staticmethod
    def _run_engine(engine: Engine, processes: List[FleetProcess]) -> None:
        try:
            engine.run()
        except BaseException:
            # A crash — injected (JournalCrash) or real — leaves host
            # processes suspended mid-frame; close them deterministically
            # so teardown doesn't fall to the garbage collector.
            for process in processes:
                process.close()
            raise

    # -- journaling ----------------------------------------------------------

    def _journal_barrier(self, wave: int, kind: str):
        """A gate/latch subscriber that journals one wave boundary."""
        def record() -> None:
            self.journal.wave_barrier(self._engine.now, wave, kind)
        return record

    def _journal_checkpoint(self) -> None:
        """Journal a digest of the rebuildable controller state.

        Runs at each wave-done barrier.  Replay cross-checks the digest
        byte-for-byte, so a recovered controller proves its placement map,
        host records and fault-stream RNG positions match the crashed run.
        """
        self.journal.checkpoint(
            self._engine.now,
            self._state_digest(),
            done_hosts=sum(1 for r in self.records.values()
                           if r.state is HostState.DONE),
            migrations_executed=self._migrations_executed,
        )

    def _state_digest(self) -> bytes:
        """SHA-256 over a canonical rendering of the recoverable state.

        Rendered as the ``repr`` of plain sorted tuples rather than JSON:
        the digest only has to be deterministic (replay byte-compares it
        against the journaled checkpoint), and tuple repr keeps the whole
        1000-host walk at C speed so checkpointing stays off the
        campaign's critical path.  The digest is deliberately slim: host
        names are implied by sorted order (naming is a deterministic
        function of the journaled config), and per-host retry/rollback/
        skip counters are transitively bound already — every retry and
        rollback emits transitions that replay byte-compares one by one.
        """
        states = [record.state.value
                  for _, record in sorted(self.records.items())]
        draws = [stream.draws
                 for _, stream in sorted(self._streams.items())]
        state = (sorted(self._aborted), states, self._migrations_executed,
                 self._placement_sig, draws)
        return hashlib.sha256(repr(state).encode("utf-8")).digest()

    # -- host state machine --------------------------------------------------

    def _host_process(self, record: HostRecord, hp: _HostPlan):
        cfg = self.config
        yield self._wave_release[hp.wave]
        with self._admission.held() as admitted:
            yield admitted
            ok = yield from self._evacuate(record, hp)
            self._evac_latch[hp.wave].count_down()
            if ok and cfg.sequential_groups:
                # Fig. 13 semantics: the wave's micro-reboots start only once
                # all of the wave's evacuations are done.
                yield self._evac_latch[hp.wave]
            if ok:
                ok = yield from self._transplant(record, hp)
            if ok:
                ok = yield from self._verify(record, hp)
            if ok:
                record.transition(HostState.DONE, self._engine.now, self.trace)
                self.host_hypervisor[hp.name] = self.target_kind.value
        self._wave_done[hp.wave].count_down()

    def _evacuate(self, record: HostRecord, hp: _HostPlan):
        if not hp.evacuations:
            return True  # PENDING -> TRANSPLANTING directly
        record.transition(HostState.EVACUATING, self._engine.now, self.trace)
        for index, (action, position, plan) in enumerate(hp.evacuations):
            gates = self._vm_gates[action.vm_name]
            if position > 0:
                yield gates[position - 1]
            with self._vm_locks[action.vm_name].held() as vm_lock:
                yield vm_lock
                skipped = action.vm_name in self._aborted
                if skipped:
                    record.skipped_migrations += 1
                else:
                    ok = yield from self._migrate_with_retry(record, action,
                                                             position, plan)
            # The VM lock is returned here, before the chain gate fires or
            # a rollback starts pulling VMs back.
            if skipped:
                gates[position].fire()
                continue
            if not ok:
                yield from self._roll_back(record, hp,
                                           remaining=hp.evacuations[index + 1:])
                return False
        return True

    def _migrate_with_retry(self, record: HostRecord,
                            action: MigrationAction, position: int,
                            plan: StagePlan):
        """One evacuation with bounded retry.  Caller holds the VM lock."""
        cfg = self.config
        stream = self._streams[record.name]
        gates = self._vm_gates[action.vm_name]
        attempt = 0
        while True:
            yield self._ledger.reserve(action.destination)
            with self._link.held() as link:
                yield link
                stalled = stream.strikes(FailurePhase.EVACUATION)
                if stalled:
                    # The transfer stalls; the watchdog kills it after the
                    # timeout, the fabric and the reserved slot free up.
                    yield cfg.stall_timeout_s
                else:
                    yield plan.total_s
            # The fabric link is returned here on both outcomes.
            if not stalled:
                self._commit_move(action.vm_name, action.source,
                                  action.destination)
                gates[position].fire()
                return True
            self._ledger.release(action.destination)
            record.transition(
                HostState.FAILED, self._engine.now, self.trace,
                reason=f"{FailurePhase.EVACUATION.value}:{action.vm_name}",
            )
            if self.retry.exhausted(attempt):
                self._abort_vm(action.vm_name)
                gates[position].fire()
                return False
            record.transition(HostState.RETRYING, self._engine.now,
                              self.trace)
            record.retries += 1
            yield self.retry.backoff_s(attempt)
            attempt += 1
            record.transition(HostState.EVACUATING, self._engine.now,
                              self.trace)

    def _transplant(self, record: HostRecord, hp: _HostPlan):
        cfg = self.config
        stream = self._streams[record.name]
        record.transition(HostState.TRANSPLANTING, self._engine.now,
                          self.trace)
        attempt = 0
        while stream.strikes(FailurePhase.KEXEC):
            yield cfg.kexec_watchdog_s  # hang; watchdog fires, host recovers
            record.transition(HostState.FAILED, self._engine.now, self.trace,
                              reason=FailurePhase.KEXEC.value)
            if self.retry.exhausted(attempt):
                yield from self._roll_back(record, hp, remaining=[])
                return False
            record.transition(HostState.RETRYING, self._engine.now,
                              self.trace)
            record.retries += 1
            yield self.retry.backoff_s(attempt)
            attempt += 1
            record.transition(HostState.TRANSPLANTING, self._engine.now,
                              self.trace)
        # Execute = every stage up to verify; verify runs in _verify so the
        # trace's TRANSPLANTING/VERIFYING boundary is a stage boundary.
        yield hp.plan.execute_s
        return True

    def _verify(self, record: HostRecord, hp: _HostPlan):
        cfg = self.config
        stream = self._streams[record.name]
        record.transition(HostState.VERIFYING, self._engine.now, self.trace)
        verify_s = hp.plan.stage_s(Stage.VERIFY)
        attempt = 0
        while True:
            yield verify_s
            if not stream.strikes(FailurePhase.VERIFY):
                return True
            record.transition(HostState.FAILED, self._engine.now, self.trace,
                              reason=FailurePhase.VERIFY.value)
            if self.retry.exhausted(attempt):
                # The host came up wrong: micro-reboot back to the source
                # hypervisor (ReHype-style recovery), then report rollback.
                yield self._pipelines.inplace(self.source_kind).plan_host(
                    hp.upgrade.node_name, hp.upgrade.vm_count,
                    hp.upgrade.total_memory_bytes,
                ).execute_s
                yield from self._roll_back(record, hp, remaining=[])
                return False
            record.transition(HostState.RETRYING, self._engine.now,
                              self.trace)
            record.retries += 1
            yield self.retry.backoff_s(attempt)
            attempt += 1
            # Backoff covers re-translating the UISR; then verify again.
            record.transition(HostState.VERIFYING, self._engine.now,
                              self.trace)

    # -- rollback ------------------------------------------------------------

    def _roll_back(self, record: HostRecord, hp: _HostPlan, remaining):
        """Return the host to its pre-campaign state after retry exhaustion.

        Unexecuted evacuations are skipped (their VMs never left), every VM
        originally on the host is pulled back to it, and the host stays on
        the source hypervisor.  The host's VMs therefore remain exposed —
        which is exactly what the fleet window metric must report.
        """
        for action, position, _plan in remaining:
            record.skipped_migrations += 1
            self._abort_vm(action.vm_name)
            self._vm_gates[action.vm_name][position].fire()
        # Stop any future planned move of this host's original VMs: the
        # plan assumed they would sit wherever the campaign left them.
        for vm in hp.initial_vms:
            self._abort_vm(vm)
        for vm in hp.initial_vms:
            if self.placement[vm] == hp.name:
                continue
            # Serializes after any in-flight onward move of the same VM.
            with self._vm_locks[vm].held() as vm_lock:
                yield vm_lock
                source = self.placement[vm]
                if source != hp.name:
                    cluster_vm = self._cluster.vms[vm]
                    back = MigrationAction(
                        vm_name=vm, source=source, destination=hp.name,
                        memory_bytes=cluster_vm.memory_bytes,
                        workload=cluster_vm.workload,
                    )
                    yield self._ledger.reserve(hp.name)
                    with self._link.held() as link:
                        yield link
                        yield self._pipelines.migration(
                            self.source_kind,
                        ).plan_vm(
                            back.vm_name, back.memory_bytes,
                            back.workload.dirty_rate_bytes_s,
                        ).total_s
                    self._commit_move(vm, source, hp.name)
        record.rollbacks += 1
        record.transition(HostState.ROLLED_BACK, self._engine.now, self.trace,
                          reason="retries-exhausted")

    # -- shared bookkeeping ---------------------------------------------------

    def _abort_vm(self, vm: str) -> None:
        if vm in self._chain_counts:
            self._aborted.add(vm)

    def _commit_move(self, vm: str, source: str, destination: str) -> None:
        self.placement[vm] = destination
        if self.journal is not None:
            move = f"{vm}\x1f{source}\x1f{destination}".encode("utf-8")
            self._placement_sig = zlib.crc32(move, self._placement_sig)
        self._ledger.release(source)
        self._migrations_executed += 1
