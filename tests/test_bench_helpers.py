"""Tests for the bench harness helpers and report formatting."""


from repro.bench.report import format_series, format_table, print_experiment
from repro.bench.runner import (
    inplace_breakdown,
    inplace_sweep,
    make_host_pair,
    make_kvm_host,
    make_xen_host,
    migration_sweep,
)
from repro.hw.machine import M1_SPEC
from repro.hypervisors.base import HypervisorKind


class TestReport:
    def test_format_table_aligns(self):
        text = format_table(["name", "value"],
                            [["alpha", 1.0], ["b", 123.456]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "alpha" in lines[3]
        assert "123.5" in lines[4]

    def test_format_series(self):
        text = format_series("s", [1, 2], [10.0, 20.0],
                             x_label="n", y_label="sec")
        assert "n" in text and "sec" in text

    def test_print_experiment(self, capsys):
        print_experiment("Fig. 0", "nothing", "body")
        out = capsys.readouterr().out
        assert "Fig. 0" in out and "body" in out


class TestRunner:
    def test_make_xen_host(self):
        machine = make_xen_host(M1_SPEC, vm_count=2, vcpus=2)
        assert machine.hypervisor.kind is HypervisorKind.XEN
        assert len(machine.hypervisor.domains) == 2

    def test_make_kvm_host_has_24_pin_guests(self):
        machine = make_kvm_host(M1_SPEC, vm_count=1)
        domain = next(iter(machine.hypervisor.domains.values()))
        assert domain.vm.platform.ioapic.pin_count == 24

    def test_make_host_pair_connected(self):
        source, destination, fabric = make_host_pair(
            M1_SPEC, HypervisorKind.KVM
        )
        assert fabric.connected(source, destination)
        assert destination.hypervisor.kind is HypervisorKind.KVM

    def test_inplace_breakdown_both_directions(self):
        to_kvm = inplace_breakdown(M1_SPEC, HypervisorKind.KVM)
        to_xen = inplace_breakdown(M1_SPEC, HypervisorKind.XEN)
        assert to_kvm.target == "kvm"
        assert to_xen.target == "xen"
        assert to_xen.reboot_s > to_kvm.reboot_s

    def test_inplace_sweep_shapes(self):
        sweep = inplace_sweep(M1_SPEC, HypervisorKind.KVM,
                              vcpu_points=[1, 2], memory_points=[1.0],
                              vm_count_points=[1, 2])
        assert len(sweep["vcpus"]) == 2
        assert len(sweep["memory_gib"]) == 1
        assert sweep["vm_count"][1].vm_count == 2

    def test_migration_sweep_shapes(self):
        sweep = migration_sweep(M1_SPEC, HypervisorKind.KVM,
                                vcpu_points=[1], memory_points=[1.0],
                                vm_count_points=[2])
        assert len(sweep["vcpus"][0]) == 1
        assert len(sweep["vm_count"][0]) == 2
