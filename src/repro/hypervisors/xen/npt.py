"""Xen's p2m (physical-to-machine) nested page table.

The NPT *mapping* is dictated by hardware (EPT/NPT entries translate guest
frames to machine frames), but each hypervisor has its own management policy
around it (§3.1).  Xen maintains a p2m tree plus an m2p reverse table and
type tags per entry (its PV heritage) — that extra metadata is why a Xen NPT
is bigger than KVM's for the same guest, and why the structure must be
*translated*, not copied, during transplant.
"""

from typing import Dict

from repro.guest.vm import VirtualMachine
from repro.hw.memory import PAGE_4K
from repro.hypervisors.base import NestedPageTable

# Bytes of p2m/m2p metadata per mapped guest page (8 B PTE + 8 B m2p entry
# + type/accounting tags).
_P2M_BYTES_PER_ENTRY = 24
_P2M_ROOT_OVERHEAD = 4 * PAGE_4K

XEN_NPT_POLICY = "xen-p2m"


class XenP2M(NestedPageTable):
    """Concrete NPT with Xen's p2m policy and an m2p reverse map."""

    def __init__(self, gfn_to_mfn: Dict[int, int], page_size: int):
        metadata = _P2M_ROOT_OVERHEAD + _P2M_BYTES_PER_ENTRY * len(gfn_to_mfn)
        super().__init__(
            gfn_to_mfn=gfn_to_mfn,
            page_size=page_size,
            policy_tag=XEN_NPT_POLICY,
            metadata_bytes=metadata,
        )
        self.m2p = {mfn: gfn for gfn, mfn in gfn_to_mfn.items()}

    def reverse_lookup(self, mfn: int) -> int:
        return self.m2p[mfn]


def build_p2m(vm: VirtualMachine) -> XenP2M:
    """Construct the p2m for a VM from its guest image mapping."""
    return XenP2M(dict(vm.image.mappings()), vm.image.page_size)
