"""Per-host mechanism selection — the paper's §4.5.2 OpenStack decision.

"It is up to the datacenter operator to decide which transplant approach
is the most appropriate" (§1).  At fleet scale that decision happens per
host: VMs that cannot tolerate InPlaceTP's seconds of downtime are
evacuated through MigrationTP proxies and the rest ride PRAM through the
micro-reboot.  :class:`MechanismPolicy` makes the choice explicit and
configurable:

* ``inplace``   — everybody rides the micro-reboot; zero fabric load,
  maximum per-VM downtime (the §5.4 scalability end of the trade-off);
* ``migration`` — evacuate every migratable VM (spare capacity
  permitting), reboot a near-empty host; minimal guest downtime,
  maximum fabric and capacity cost;
* ``hybrid``    — the paper's default: evacuate exactly the VMs flagged
  InPlaceTP-incompatible, everyone else rides;
* ``auto``      — decide per host from per-VM downtime SLOs, spare
  capacity and link bandwidth: evacuate an SLO violator only when a
  destination slot exists *and* MigrationTP's own downtime fits the SLO
  (a slow fabric can make migrating worse than riding).  Evacuating
  shrinks the predicted reboot downtime, which can un-violate the
  remaining riders, so the decision iterates to a fixed point.

Decisions consume duck-typed :class:`VMProfile` facts, so the cluster
model (a higher layer) adapts its VMs without this module importing it.
All durations come from :mod:`repro.core.pipeline` — the policy predicts
with the same floats the campaign later executes.
"""

import enum
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.errors import TransplantError
from repro.core.pipeline import InPlacePipeline, MigrationPipeline

#: Downtime SLOs by workload class (seconds).  Streaming guests drop
#: connections after ~2 s of blackout; interactive/compute guests ride
#: out tens of seconds (the Azure maintenance convention); idle guests
#: tolerate effectively anything.
WORKLOAD_SLO_S: Dict[str, float] = {
    "streaming": 2.0,
    "cpu-memory": 30.0,
    "idle": 300.0,
}

DEFAULT_SLO_S = 30.0


class MechanismKind(enum.Enum):
    INPLACE = "inplace"
    MIGRATION = "migration"
    HYBRID = "hybrid"
    AUTO = "auto"


#: the paper's §4.5.2 behaviour, and the fleet's serialization default —
#: campaigns configured with it produce pre-refactor-identical artifacts
DEFAULT_MECHANISM = MechanismKind.HYBRID


@dataclass(frozen=True)
class VMProfile:
    """The per-VM facts a mechanism decision consumes."""

    name: str
    memory_bytes: int
    dirty_rate_bytes_s: float
    downtime_slo_s: float
    #: False forbids riding the micro-reboot (the legacy
    #: ``inplace_compatible`` flag): the VM must evacuate if it can
    inplace_capable: bool = True
    #: False forbids MigrationTP (pass-through device, §4.2.3)
    migratable: bool = True

    @classmethod
    def from_cluster_vm(cls, vm) -> "VMProfile":
        """Adapt a duck-typed cluster VM (``name``, ``memory_bytes``,
        ``workload`` with ``value``/``dirty_rate_bytes_s``,
        ``inplace_compatible``)."""
        return cls(
            name=vm.name,
            memory_bytes=vm.memory_bytes,
            dirty_rate_bytes_s=vm.workload.dirty_rate_bytes_s,
            downtime_slo_s=WORKLOAD_SLO_S.get(vm.workload.value,
                                              DEFAULT_SLO_S),
            inplace_capable=vm.inplace_compatible,
        )


@dataclass(frozen=True)
class HostDecision:
    """The policy's verdict for one host."""

    host: str
    #: the mechanism the host actually uses: "inplace" (nobody moves),
    #: "migration" (everybody moves) or "hybrid" (a split)
    resolved: str
    evacuate: Tuple[str, ...]
    rides: Tuple[str, ...]
    #: riders whose downtime SLO the decision cannot satisfy (no spare
    #: capacity, unmigratable, or a fabric too slow to help)
    slo_violations: Tuple[str, ...]
    predicted_downtime_s: float
    reason: str


class MechanismPolicy:
    """Chooses, per host, which VMs evacuate and which ride."""

    def __init__(self, kind: "MechanismKind | str" = DEFAULT_MECHANISM):
        if isinstance(kind, str):
            try:
                kind = MechanismKind(kind)
            except ValueError:
                raise TransplantError(
                    f"unknown mechanism {kind!r}; pick from "
                    f"{[k.value for k in MechanismKind]}"
                )
        self.kind = kind

    def decide_host(self, host: str, vms: Sequence[VMProfile], *,
                    inplace: InPlacePipeline,
                    migration: MigrationPipeline,
                    spare_slots: int) -> HostDecision:
        """Split ``vms`` into evacuees and riders for one host.

        ``spare_slots`` is the destination capacity available to this
        host's evacuations; ``hybrid`` ignores it (the planner validates
        capacity, as the paper's BtrPlace formulation does), the other
        policies never plan more evacuations than slots.
        """
        if self.kind is MechanismKind.INPLACE:
            evacuate: List[VMProfile] = []
            riders = list(vms)
            reason = "operator pinned inplace: all VMs ride the reboot"
        elif self.kind is MechanismKind.MIGRATION:
            movable = [vm for vm in vms if vm.migratable]
            # Strictest SLOs first when capacity runs short.
            movable.sort(key=lambda vm: (vm.downtime_slo_s, vm.name))
            evacuate = movable[:max(0, spare_slots)]
            gone = {vm.name for vm in evacuate}
            riders = [vm for vm in vms if vm.name not in gone]
            reason = "operator pinned migration: evacuate everything movable"
        elif self.kind is MechanismKind.HYBRID:
            evacuate = [vm for vm in vms
                        if not vm.inplace_capable and vm.migratable]
            gone = {vm.name for vm in evacuate}
            riders = [vm for vm in vms if vm.name not in gone]
            reason = "paper default: evacuate InPlaceTP-incompatible VMs"
        else:
            evacuate, riders, reason = self._decide_auto(
                vms, inplace=inplace, migration=migration,
                spare_slots=spare_slots, host=host)

        predicted = self._predicted_downtime_s(host, riders, inplace)
        violations = tuple(
            vm.name for vm in riders
            if not vm.inplace_capable or vm.downtime_slo_s < predicted
        )
        if not evacuate:
            resolved = "inplace"
        elif not riders:
            resolved = "migration"
        else:
            resolved = "hybrid"
        return HostDecision(
            host=host,
            resolved=resolved,
            evacuate=tuple(vm.name for vm in evacuate),
            rides=tuple(vm.name for vm in riders),
            slo_violations=violations,
            predicted_downtime_s=predicted,
            reason=reason,
        )

    @staticmethod
    def _predicted_downtime_s(host: str, riders: Sequence[VMProfile],
                              inplace: InPlacePipeline) -> float:
        plan = inplace.plan_host(
            host, len(riders), sum(vm.memory_bytes for vm in riders))
        return plan.downtime_s

    def _decide_auto(self, vms: Sequence[VMProfile], *,
                     inplace: InPlacePipeline,
                     migration: MigrationPipeline,
                     spare_slots: int, host: str):
        """The §4.5.2 heuristic, iterated to a fixed point.

        A rider evacuates when (a) it cannot ride at all, or (b) its SLO
        is tighter than the predicted reboot downtime AND MigrationTP's
        own downtime over the current fabric fits the SLO — migrating a
        VM onto a slow link can black it out longer than the reboot
        would.  Every evacuation needs a spare slot and shrinks the
        predicted downtime for the remaining riders, so the loop re-runs
        until no rider moves.
        """
        riders = list(vms)
        evacuate: List[VMProfile] = []
        moved_reasons: List[str] = []
        while True:
            budget = spare_slots - len(evacuate)
            if budget <= 0:
                break
            predicted = self._predicted_downtime_s(host, riders, inplace)
            violators = []
            for vm in riders:
                if not vm.migratable:
                    continue
                if vm.inplace_capable and vm.downtime_slo_s >= predicted:
                    continue
                migration_downtime = migration.plan_vm(
                    vm.name, vm.memory_bytes, vm.dirty_rate_bytes_s,
                ).downtime_s
                if vm.inplace_capable and migration_downtime > vm.downtime_slo_s:
                    # The fabric cannot beat the reboot for this VM.
                    continue
                violators.append(vm)
            violators.sort(key=lambda vm: (vm.downtime_slo_s, vm.name))
            violators = violators[:budget]
            if not violators:
                break
            evacuate.extend(violators)
            gone = {vm.name for vm in violators}
            riders = [vm for vm in riders if vm.name not in gone]
            moved_reasons.append(
                f"moved {len(violators)} VM(s) under SLO pressure")
        reason = ("auto: " + "; ".join(moved_reasons)
                  if moved_reasons else "auto: every rider meets its SLO")
        return evacuate, riders, reason


def decide_fleet(policy: MechanismPolicy,
                 host_vms: Mapping[str, Sequence[VMProfile]],
                 free_slots: Mapping[str, int], *,
                 inplace: InPlacePipeline,
                 migration: MigrationPipeline) -> Dict[str, HostDecision]:
    """Decide every host, spending a shared spare-capacity budget.

    Hosts are decided in sorted name order; each planned evacuation
    consumes one slot of the fleet-wide spare pool (a host's own free
    slots cannot receive its evacuees, so its evacuations land on the
    other providers, drained in sorted name order).  Deterministic:
    same profiles and slots produce the same decisions.
    """
    remaining = {name: free_slots[name] for name in sorted(free_slots)}
    decisions: Dict[str, HostDecision] = {}
    for host in sorted(host_vms):
        spare = sum(slots for name, slots in remaining.items()
                    if name != host)
        decision = policy.decide_host(
            host, host_vms[host], inplace=inplace, migration=migration,
            spare_slots=spare,
        )
        decisions[host] = decision
        need = len(decision.evacuate)
        for name in remaining:
            if need == 0:
                break
            if name == host:
                continue
            taken = min(remaining[name], need)
            remaining[name] -= taken
            need -= taken
    return decisions


def mechanism_mix(decisions: Mapping[str, HostDecision]) -> Dict[str, Dict[str, int]]:
    """Per-mechanism host/VM counts for reporting (sorted, plain dicts)."""
    mix: Dict[str, Dict[str, int]] = {}
    for host in sorted(decisions):
        decision = decisions[host]
        entry = mix.setdefault(
            decision.resolved, {"hosts": 0, "vms": 0, "evacuations": 0})
        entry["hosts"] += 1
        entry["vms"] += len(decision.rides) + len(decision.evacuate)
        entry["evacuations"] += len(decision.evacuate)
    return {kind: mix[kind] for kind in sorted(mix)}
