"""Video-streaming server model (the §5.4 cluster mix's third member).

A streaming server pushes segments to clients that each hold a playback
buffer.  Short interruptions (InPlaceTP's seconds of downtime) are absorbed
by the buffer — clients keep playing; only when an outage outlasts the
buffer do rebuffering events appear.  This captures why the paper can put
streaming VMs through transplants at all: the client-side buffer is the
tolerance budget.
"""

from dataclasses import dataclass
from repro.errors import ReproError
from repro.hypervisors.base import HypervisorKind
from repro.workloads.base import HostTimeline, Workload

DEFAULT_BITRATE_MBPS = 8.0
DEFAULT_BUFFER_S = 12.0


@dataclass
class StreamingClientStats:
    """One client's experience over a run."""

    rebuffer_events: int
    rebuffer_seconds: float
    played_seconds: float

    @property
    def rebuffer_ratio(self) -> float:
        total = self.played_seconds + self.rebuffer_seconds
        return self.rebuffer_seconds / total if total else 0.0


class StreamingWorkload(Workload):
    """Segment throughput plus a client-buffer playback model."""

    metric_name = "streaming-throughput"
    metric_unit = "Mbit/s"
    network_dependent = True

    def __init__(self, clients: int = 20,
                 bitrate_mbps: float = DEFAULT_BITRATE_MBPS,
                 buffer_s: float = DEFAULT_BUFFER_S,
                 seed: int = 0, noise: float = 0.02):
        super().__init__(seed=seed, noise=noise)
        if clients < 1:
            raise ReproError("need at least one streaming client")
        if buffer_s <= 0 or bitrate_mbps <= 0:
            raise ReproError("buffer and bitrate must be positive")
        self.clients = clients
        self.bitrate_mbps = bitrate_mbps
        self.buffer_s = buffer_s

    def baseline(self, kind: HypervisorKind) -> float:
        # Serving is I/O-bound; hypervisor choice barely moves throughput.
        scale = 1.03 if kind is HypervisorKind.KVM else 1.0
        return self.clients * self.bitrate_mbps * scale

    def playback(self, duration_s: float, timeline: HostTimeline,
                 step_s: float = 0.1) -> StreamingClientStats:
        """Simulate one client's buffer through the timeline.

        The buffer fills at 1 s of content per served second (server keeps
        ahead) and drains during outages; hitting empty is a rebuffer event
        that lasts until service returns.
        """
        buffer_level = self.buffer_s
        rebuffering = False
        events = 0
        stalled = 0.0
        played = 0.0
        t = 0.0
        while t < duration_s:
            serving = not (timeline.is_paused(t)
                           or timeline.is_network_down(t))
            if serving:
                refill = step_s * (2.0 if buffer_level < self.buffer_s
                                   else 0.0)
                buffer_level = min(self.buffer_s,
                                   buffer_level + refill)
                if rebuffering and buffer_level > 1.0:
                    rebuffering = False  # resume after modest refill
            if rebuffering:
                stalled += step_s
            elif buffer_level > 0:
                buffer_level = max(0.0, buffer_level - step_s)
                played += step_s
                if buffer_level == 0.0 and not serving:
                    rebuffering = True
                    events += 1
            t += step_s
        return StreamingClientStats(
            rebuffer_events=events,
            rebuffer_seconds=stalled,
            played_seconds=played,
        )

    def run_with_playback(self, duration_s: float, timeline: HostTimeline
                          ) -> tuple:
        """(throughput series, client stats) over one timeline."""
        series = self.run(duration_s, timeline)
        stats = self.playback(duration_s, timeline)
        return series, stats
