"""Redis / redis-benchmark model (Fig. 11).

The paper's measurements: ~30 K QPS under Xen, ~37 % higher under KVM for
this workload; service stops entirely during InPlaceTP's 9-second window
(downtime plus NIC re-init — Redis is network-dependent); during a
migration's pre-copy the throughput dips, then recovers at the
destination's native level after a negligible pause.
"""

from repro.hypervisors.base import HypervisorKind
from repro.workloads.base import Workload

XEN_QPS = 30_000.0
KVM_QPS = XEN_QPS * 1.37  # the paper's 37 % post-transplant improvement


class RedisWorkload(Workload):
    """In-memory key-value store stressed by its bundled load injector."""

    metric_name = "redis-qps"
    metric_unit = "ops/s"
    network_dependent = True

    def __init__(self, seed: int = 0, noise: float = 0.03):
        super().__init__(seed=seed, noise=noise)

    def baseline(self, kind: HypervisorKind) -> float:
        return KVM_QPS if kind is HypervisorKind.KVM else XEN_QPS
