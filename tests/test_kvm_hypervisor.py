"""Tests for the KVM substrate: ioctl formats, EPT, CFS, kvmtool."""

import pytest

from repro.errors import HypervisorError, StateFormatError
from repro.guest.devices import KVM_IOAPIC_PINS, make_default_platform
from repro.guest.vcpu import make_boot_vcpu
from repro.guest.vm import VMConfig
from repro.hypervisors import KVMHypervisor
from repro.hypervisors.base import HypervisorKind, HypervisorType
from repro.hypervisors.kvm import formats
from repro.hypervisors.kvm.npt import KVM_NPT_POLICY

GIB = 1024 ** 3


def _state(vcpus=2, seed=0):
    return ([make_boot_vcpu(i, seed=seed) for i in range(vcpus)],
            make_default_platform(vcpus, ioapic_pins=KVM_IOAPIC_PINS,
                                  seed=seed))


class TestKVMBundle:
    def test_roundtrip_preserves_architectural_state(self):
        vcpus, platform = _state()
        bundle = formats.encode_bundle(vcpus, platform)
        decoded_vcpus, decoded_platform = formats.decode_bundle(bundle)
        assert ([v.architectural_view() for v in decoded_vcpus]
                == [v.architectural_view() for v in vcpus])
        assert decoded_platform.architectural_view() == platform.architectural_view()

    def test_bundle_has_per_vcpu_ioctls(self):
        vcpus, platform = _state(vcpus=3)
        bundle = formats.encode_bundle(vcpus, platform)
        for i in range(3):
            for ioctl in ("REGS", "SREGS", "MSRS", "LAPIC", "FPU", "XSAVE",
                          "XCRS"):
                assert f"KVM_GET_{ioctl}:{i}" in bundle
        assert "KVM_GET_IRQCHIP" in bundle
        assert "KVM_GET_PIT2" in bundle

    def test_mtrr_travels_inside_msrs(self):
        vcpus, platform = _state(vcpus=1)
        bundle = formats.encode_bundle(vcpus, platform)
        msrs = formats.decode_msrs(bundle["KVM_GET_MSRS:0"])
        assert formats.MSR_MTRR_DEF_TYPE in msrs
        assert formats.MSR_APIC_BASE in msrs
        arch, apic_base, mtrr = formats.split_msrs(msrs)
        assert formats.MSR_MTRR_DEF_TYPE not in arch
        assert mtrr.default_type == platform.mtrr.default_type
        assert mtrr.variable == platform.mtrr.variable

    def test_48_pin_ioapic_rejected(self):
        vcpus, _ = _state(vcpus=1)
        platform48 = make_default_platform(1)  # Xen-sized
        with pytest.raises(StateFormatError):
            formats.encode_bundle(vcpus, platform48)

    def test_pack_unpack_bundle(self):
        vcpus, platform = _state(vcpus=1)
        bundle = formats.encode_bundle(vcpus, platform)
        flat = formats.pack_bundle(bundle)
        assert formats.unpack_bundle(flat) == bundle

    def test_corrupt_flat_blob_rejected(self):
        vcpus, platform = _state(vcpus=1)
        flat = formats.pack_bundle(formats.encode_bundle(vcpus, platform))
        with pytest.raises(StateFormatError):
            formats.unpack_bundle(flat[:-4])

    def test_bundle_size_counts_all_entries(self):
        vcpus, platform = _state(vcpus=1)
        bundle = formats.encode_bundle(vcpus, platform)
        assert formats.bundle_size(bundle) == sum(len(v) for v in bundle.values())

    def test_xcrs_validation(self):
        with pytest.raises(StateFormatError):
            formats.decode_xcrs(b"\x02\x00\x00\x00")


class TestKVMHypervisor:
    def test_identity(self):
        assert KVMHypervisor.kind is HypervisorKind.KVM
        assert KVMHypervisor.hv_type is HypervisorType.TYPE_2
        assert KVMHypervisor.boot_kernel_count == 1

    def test_create_vm_builds_ept_and_vmm(self, m1):
        kvm = KVMHypervisor()
        kvm.boot(m1)
        domain = kvm.create_vm(VMConfig("g", vcpus=1, memory_bytes=GIB))
        assert domain.npt.policy_tag == KVM_NPT_POLICY
        assert kvm.vmm_for(domain.domid).domain is domain

    def test_ept_lighter_than_p2m(self, m1, m2):
        from repro.hypervisors import XenHypervisor

        kvm = KVMHypervisor()
        kvm.boot(m1)
        xen = XenHypervisor()
        xen.boot(m2)
        kd = kvm.create_vm(VMConfig("k", vcpus=1, memory_bytes=GIB))
        xd = xen.create_vm(VMConfig("x", vcpus=1, memory_bytes=GIB))
        assert kd.npt.metadata_bytes < xd.npt.metadata_bytes

    def test_cfs_tracks_domains(self, m1):
        kvm = KVMHypervisor()
        kvm.boot(m1)
        d = kvm.create_vm(VMConfig("a", vcpus=4, memory_bytes=GIB))
        assert kvm.scheduler.queued_vcpus() == 4
        kvm.destroy_domain(d.domid)
        assert kvm.scheduler.queued_vcpus() == 0
        with pytest.raises(HypervisorError):
            kvm.vmm_for(d.domid)

    def test_kvmtool_state_roundtrip(self, kvm_host_factory):
        machine = kvm_host_factory(vm_count=1, vcpus=2)
        kvm = machine.hypervisor
        domain = next(iter(kvm.domains.values()))
        vmm = kvm.vmm_for(domain.domid)
        bundle = vmm.read_state_bundle()
        original = [v.architectural_view() for v in domain.vm.vcpus]
        domain.vm.vcpus = [make_boot_vcpu(i, seed=50) for i in range(2)]
        vmm.apply_state_bundle(bundle)
        assert [v.architectural_view() for v in domain.vm.vcpus] == original
        assert vmm.ioctls_issued > 0

    def test_kvmtool_rejects_wrong_vcpu_count(self, kvm_host_factory):
        machine = kvm_host_factory(vm_count=1, vcpus=1)
        kvm = machine.hypervisor
        domain = next(iter(kvm.domains.values()))
        vcpus, platform = _state(vcpus=2)
        bundle = formats.encode_bundle(vcpus, platform)
        with pytest.raises(HypervisorError):
            kvm.vmm_for(domain.domid).apply_state_bundle(bundle)

    def test_scheduler_report_shapes(self, m1):
        kvm = KVMHypervisor()
        kvm.boot(m1)
        kvm.create_vm(VMConfig("a", vcpus=2, memory_bytes=GIB))
        report = kvm.scheduler_report()
        assert report["scheduler"] == "cfs"
        assert report["queued_vcpus"] == 2
