"""NOVA-like microhypervisor substrate.

A third member of the datacenter's hypervisor repertoire, modeled after
microhypervisor architectures (NOVA [48] in the paper's related work):

* a tiny type-I kernel plus a user-level VMM per guest — the fastest
  micro-reboot target of the three;
* its own VM-state format (:mod:`formats`): a capability-space *snapshot*
  of tagged sections, unlike Xen's typed-record blob and KVM's per-ioctl
  bundle;
* a 32-pin IOAPIC model (between KVM's 24 and Xen's 48), so conversions in
  *both* directions need the compat fixups;
* a priority round-robin scheduler and a lean NPT policy.

Its existence validates the UISR design claim: registering one converter
pair (:mod:`repro.core.convert.nova_uisr`) makes every transplant
direction involving NOVA work with no changes to the other hypervisors.
"""

from repro.hypervisors.nova.hypervisor import NOVAHypervisor

__all__ = ["NOVAHypervisor"]
