"""Compatibility re-export of the binary packing helpers.

The :class:`Packer`/:class:`Unpacker` pair grew into the ``repro.io``
streaming frame layer and lives in :mod:`repro.io.frames` now; this
module keeps the historical import path working for both hypervisors'
format code.
"""

from repro.io.frames import Packer, Unpacker

__all__ = ["Packer", "Unpacker"]
