"""Event loop and generator-based processes.

The engine holds a priority queue of timestamped events.  Two styles of
concurrency are supported:

* **Callbacks** — ``engine.call_at(t, fn)`` / ``engine.call_after(dt, fn)``.
* **Processes** — generator functions that ``yield`` a float (seconds to
  sleep); the engine resumes them after simulated time passes.  This mirrors
  how workloads and transplant phases are written throughout the library.

Events at equal timestamps run in scheduling order (FIFO), which keeps runs
deterministic.
"""

import heapq
import itertools
from typing import Callable, Generator, Iterable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.clock import SimClock


class Event:
    """A scheduled callback.  ``cancel()`` prevents it from firing."""

    __slots__ = ("time", "seq", "fn", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Process:
    """Handle to a running generator process.

    The generator yields floats (sleep durations in simulated seconds).  When
    it returns, ``done`` becomes true and ``result`` holds its return value.
    """

    def __init__(self, engine: "Engine", gen: Generator, name: str = ""):
        self._engine = engine
        self._gen = gen
        self.name = name or repr(gen)
        self.done = False
        self.result = None
        self.error: Optional[BaseException] = None
        self._waiters: List[Callable[[], None]] = []

    def _step(self) -> None:
        if self.done:
            return
        try:
            delay = next(self._gen)
        except StopIteration as stop:
            self.done = True
            self.result = getattr(stop, "value", None)
            for waiter in self._waiters:
                waiter()
            self._waiters.clear()
            return
        except BaseException as exc:  # surfaced when the engine runs
            self.done = True
            self.error = exc
            raise
        if not isinstance(delay, (int, float)) or delay < 0:
            raise SimulationError(
                f"process {self.name!r} yielded invalid delay {delay!r}"
            )
        self._engine.call_after(float(delay), self._step)

    def on_done(self, fn: Callable[[], None]) -> None:
        """Register ``fn`` to run when the process finishes."""
        if self.done:
            fn()
        else:
            self._waiters.append(fn)


class Engine:
    """Discrete-event loop over a :class:`SimClock`."""

    def __init__(self, clock: Optional[SimClock] = None):
        self.clock = clock if clock is not None else SimClock()
        self._queue: List[Event] = []
        self._seq = itertools.count()

    @property
    def now(self) -> float:
        return self.clock.now

    def call_at(self, timestamp: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run at absolute simulated ``timestamp``."""
        if timestamp < self.clock.now:
            raise SimulationError(
                f"cannot schedule event in the past ({timestamp} < {self.clock.now})"
            )
        event = Event(timestamp, next(self._seq), fn)
        heapq.heappush(self._queue, event)
        return event

    def call_after(self, delay: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self.clock.now + delay, fn)

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a generator process immediately (its first step runs now)."""
        process = Process(self, gen, name=name)
        self.call_after(0.0, process._step)
        return process

    def spawn_at(self, timestamp: float, gen: Generator, name: str = "") -> Process:
        """Start a generator process at an absolute timestamp."""
        process = Process(self, gen, name=name)
        self.call_at(timestamp, process._step)
        return process

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the queue drains or ``until`` is reached.

        Returns the clock value when the loop stops.
        """
        while self._queue:
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and event.time > until:
                break
            heapq.heappop(self._queue)
            self.clock.advance_to(event.time)
            event.fn()
        if until is not None and self.clock.now < until:
            self.clock.advance_to(until)
        return self.clock.now

    def run_process(self, gen: Generator, name: str = ""):
        """Spawn ``gen``, run the loop until it completes, return its result."""
        process = self.spawn(gen, name=name)
        while not process.done and self._queue:
            self.run_one()
        if not process.done:
            raise SimulationError(f"process {process.name!r} starved (empty queue)")
        if process.error is not None:
            raise process.error
        return process.result

    def run_one(self) -> bool:
        """Run a single pending event.  Returns False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            event.fn()
            return True
        return False

    def run_all(self, processes: Iterable[Process]) -> Tuple:
        """Run until every process in ``processes`` has completed."""
        pending = list(processes)
        while any(not p.done for p in pending):
            if not self.run_one():
                starved = [p.name for p in pending if not p.done]
                raise SimulationError(f"processes starved: {starved}")
        return tuple(p.result for p in pending)
