"""Benchmark-harness utilities: experiment runners, table formatting, and
the deterministic-payload / volatile-meta JSON artifact wrapper."""

import importlib

# Lazy re-exports (PEP 562): keeps ``python -m repro.bench.report`` from
# re-executing :mod:`report` after this package already imported it, and
# keeps worker spawns from paying for :mod:`runner`'s simulation imports.
_EXPORTS = {
    "BENCH_ARTIFACT_FORMAT": "repro.bench.report",
    "bench_document": "repro.bench.report",
    "format_series": "repro.bench.report",
    "format_table": "repro.bench.report",
    "host_env": "repro.bench.report",
    "payload_json": "repro.bench.report",
    "payloads_equal": "repro.bench.report",
    "print_experiment": "repro.bench.report",
    "read_bench_json": "repro.bench.report",
    "write_bench_json": "repro.bench.report",
    "SPEC_BY_NAME": "repro.bench.runner",
    "cluster_fraction_cell": "repro.bench.runner",
    "inplace_axis_cell": "repro.bench.runner",
    "inplace_breakdown": "repro.bench.runner",
    "inplace_sweep": "repro.bench.runner",
    "make_host_pair": "repro.bench.runner",
    "make_kvm_host": "repro.bench.runner",
    "make_xen_host": "repro.bench.runner",
    "migration_axis_cell": "repro.bench.runner",
    "migration_sweep": "repro.bench.runner",
}


def __getattr__(name):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(module), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = sorted(_EXPORTS)
