"""Table 5 — SPECrate 2017 through InPlaceTP and MigrationTP.

Runs all 23 applications with a transplant at mid-execution.  Shape to
hold: per-application degradation stays in the low single digits (paper
maxima: 4.19 % for InPlaceTP, 4.81 % for MigrationTP), and the cost is a
constant that vanishes for long jobs.
"""

from repro.bench.report import format_table, print_experiment
from repro.bench.runner import make_xen_host
from repro.core.transplant import HyperTP
from repro.hw.machine import M1_SPEC
from repro.hypervisors.base import HypervisorKind
from repro.sim.clock import SimClock
from repro.workloads.speccpu import SPEC_BASELINES, spec_degradation

PAPER_MAX = {"inplace": 0.0419, "migration": 0.0481}


def measure_downtime():
    machine = make_xen_host(M1_SPEC, vm_count=1, vcpus=2, memory_gib=8.0)
    return HyperTP().inplace(machine, HypervisorKind.KVM,
                             SimClock()).downtime_s


def run():
    inplace_downtime = measure_downtime()
    inplace = spec_degradation("inplace", downtime_s=inplace_downtime)
    migration = spec_degradation("migration", downtime_s=0.005,
                                 degraded_span_s=75.0, degraded_factor=0.93)
    rows = []
    for name in sorted(SPEC_BASELINES):
        kvm_s, xen_s = SPEC_BASELINES[name]
        rows.append([
            name, kvm_s, xen_s,
            inplace[name].time_s, 100 * inplace[name].degradation,
            migration[name].time_s, 100 * migration[name].degradation,
        ])
    max_inplace = max(r.degradation for r in inplace.values())
    max_migration = max(r.degradation for r in migration.values())
    rows.append(["MAX", "", "", "", 100 * max_inplace, "",
                 100 * max_migration])
    return rows


HEADERS = ["benchmark", "KVM (s)", "Xen (s)", "InPlaceTP (s)", "deg (%)",
           "MigrationTP (s)", "deg (%)"]


def test_table5_spec(benchmark):
    rows = benchmark(run)
    print_experiment(
        "Table 5",
        "SPECrate 2017 impact (paper maxima: 4.19% / 4.81%)",
        format_table(HEADERS, rows),
    )


if __name__ == "__main__":
    print_experiment(
        "Table 5",
        "SPECrate 2017 impact (paper maxima: 4.19% / 4.81%)",
        format_table(HEADERS, run()),
    )
