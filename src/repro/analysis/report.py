"""Finding reporters: human text, machine JSON, and SARIF 2.1.0.

The JSON shape is stable for CI consumption: ``{"findings": [...],
"suppressed": N, "baselined": M, "clean": bool}`` with one object per
finding as produced by :meth:`Finding.to_dict` (including the stable
``id`` fingerprint).  SARIF output carries the same fingerprints in
``partialFingerprints`` so code-scanning UIs track findings across line
shifts.  Both machine formats are byte-deterministic for identical
findings.
"""

import json
from typing import List

from repro.analysis.findings import Finding, Severity

#: SARIF result levels by severity.
_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}

SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")


def render_text(findings: List[Finding], suppressed: int = 0,
                baselined: int = 0) -> str:
    lines = [finding.format() for finding in findings]
    summary = (f"{len(findings)} finding(s)"
               if findings else "no findings")
    if suppressed:
        summary += f" ({suppressed} suppressed in source)"
    if baselined:
        summary += f" ({baselined} baselined)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(findings: List[Finding], suppressed: int = 0,
                baselined: int = 0) -> str:
    return json.dumps(
        {
            "findings": [finding.to_dict() for finding in findings],
            "suppressed": suppressed,
            "baselined": baselined,
            "clean": not findings,
        },
        indent=2,
    )


def render_sarif(findings: List[Finding], suppressed: int = 0,
                 baselined: int = 0) -> str:
    # Imported here: report is imported by the package __init__ before
    # the rule modules have registered themselves.
    from repro.analysis.engine import all_rules

    rules = [
        {
            "id": rule.name,
            "shortDescription": {"text": rule.description},
            "defaultConfiguration": {
                "level": _SARIF_LEVELS[rule.default_severity],
            },
        }
        for rule in all_rules()
    ]
    results = []
    for finding in findings:
        location = {
            "physicalLocation": {
                "artifactLocation": {"uri": finding.path},
                "region": {"startLine": max(finding.line, 1)},
            },
        }
        if finding.symbol:
            location["logicalLocations"] = [{"name": finding.symbol}]
        results.append({
            "ruleId": finding.rule,
            "level": _SARIF_LEVELS[finding.severity],
            "message": {"text": finding.message},
            "partialFingerprints": {"reproLint/v1": finding.fingerprint()},
            "locations": [location],
        })
    document = {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri":
                            "https://example.invalid/repro/lint",
                        "rules": rules,
                    },
                },
                "results": results,
                "properties": {
                    "suppressed": suppressed,
                    "baselined": baselined,
                },
            },
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
