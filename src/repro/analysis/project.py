"""Source loading and shared AST helpers.

A :class:`Project` is the unit of analysis: a set of parsed modules keyed
by a path relative to the scan root (``core/uisr/codec.py``-style), so
rules can scope themselves to the layers the paper's invariants live in.
Projects come from a directory walk (the real tree) or from in-memory
sources (rule fixtures in tests).
"""

import ast
import fnmatch
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass
class SourceModule:
    """One parsed python file."""

    path: str  # scan-root-relative, forward slashes
    source: str
    tree: ast.Module
    lines: List[str]

    @classmethod
    def parse(cls, path: str, source: str) -> "SourceModule":
        return cls(
            path=path,
            source=source,
            tree=ast.parse(source, filename=path),
            lines=source.splitlines(),
        )


class Project:
    """A set of modules under one scan root."""

    def __init__(self, modules: Sequence[SourceModule], root: str = ""):
        self.root = root
        self.modules: List[SourceModule] = list(modules)
        self._by_path: Dict[str, SourceModule] = {
            module.path: module for module in self.modules
        }

    @classmethod
    def from_directory(cls, root: str) -> "Project":
        modules = []
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                full = os.path.join(dirpath, filename)
                rel = os.path.relpath(full, root).replace(os.sep, "/")
                modules.append(_load_cached(full, rel))
        return cls(modules, root=root)

    @classmethod
    def from_sources(cls, sources: Dict[str, str]) -> "Project":
        return cls([SourceModule.parse(path, text)
                    for path, text in sources.items()])

    def get(self, path: str) -> Optional[SourceModule]:
        return self._by_path.get(path)

    def matching(self, *patterns: str) -> List[SourceModule]:
        """Modules whose path matches any of the fnmatch ``patterns``."""
        return [
            module for module in self.modules
            if any(fnmatch.fnmatch(module.path, pattern)
                   for pattern in patterns)
        ]


# -- parse cache --------------------------------------------------------------
#
# Every rule shares one Project, but the CLI (multi-root scans) and the
# test-suite's live-tree checks build several Projects over the same files;
# parsing dominates a lint run, so directory loads go through a process-wide
# cache keyed by (absolute path, project-relative path) and invalidated by
# mtime/size.  In-memory fixtures (``from_sources``) never touch the cache.

_PARSE_CACHE: Dict[Tuple[str, str], Tuple[int, int, SourceModule]] = {}


def _load_cached(full: str, rel: str) -> SourceModule:
    stat = os.stat(full)
    key = (os.path.abspath(full), rel)
    cached = _PARSE_CACHE.get(key)
    if cached is not None and cached[0] == stat.st_mtime_ns \
            and cached[1] == stat.st_size:
        return cached[2]
    with open(full, "r", encoding="utf-8") as handle:
        module = SourceModule.parse(rel, handle.read())
    _PARSE_CACHE[key] = (stat.st_mtime_ns, stat.st_size, module)
    return module


def clear_parse_cache() -> None:
    """Drop the process-wide parse cache (tests use this for isolation)."""
    _PARSE_CACHE.clear()


# -- AST helpers shared by the rules -----------------------------------------

def top_level_functions(tree: ast.Module) -> Dict[str, ast.FunctionDef]:
    """Module-level function definitions by name."""
    return {
        node.name: node for node in tree.body
        if isinstance(node, ast.FunctionDef)
    }


def top_level_classes(tree: ast.Module) -> Dict[str, ast.ClassDef]:
    return {
        node.name: node for node in tree.body
        if isinstance(node, ast.ClassDef)
    }


def dataclass_fields(node: ast.ClassDef) -> List[str]:
    """Annotated field names of a (data)class body, in declaration order."""
    fields = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target,
                                                          ast.Name):
            name = stmt.target.id
            if not name.startswith("_"):
                fields.append(name)
    return fields


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def attribute_reads(root: ast.AST, base_name: str) -> Dict[str, int]:
    """Attributes read directly off ``base_name`` (``base.attr``), with the
    first line each read occurs on."""
    reads: Dict[str, int] = {}
    for node in ast.walk(root):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == base_name):
            reads.setdefault(node.attr, node.lineno)
    return reads


def all_attribute_names(root: ast.AST) -> Iterable[str]:
    """Every attribute name read anywhere under ``root``."""
    for node in ast.walk(root):
        if isinstance(node, ast.Attribute):
            yield node.attr
