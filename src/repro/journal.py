"""``repro.journal`` — a write-ahead log for fleet campaigns.

HyperTP's whole point is shrinking the disclosure->remediated window, yet
the campaign controller is itself a single point of failure: if the
process driving a 1000-host emergency campaign dies, the window re-opens.
This module makes campaigns *crash-consistent*: every host transition,
wave boundary and checkpoint is appended to the journal **before** the
controller acts on it (group-flushed to the OS at wave boundaries — see
:class:`CampaignJournal`), and :func:`recover` rebuilds a controller from
the journal and resumes the campaign, producing a final metrics/trace
artifact byte-identical to an uninterrupted run of the same seed.

The journal rides the :mod:`repro.io` frame codec — CRC32-checked,
self-describing, END-terminated — with five record types::

    CAMPAIGN_META    the full campaign shape: config, failure rates,
                     injector seed, retry policy (record 0, JSON payload)
    HOST_TRANSITION  one host state change (seq, time, host, src, dst, why)
    WAVE_BARRIER     a wave boundary: release / evac-done / wave-done
    CHECKPOINT       a digest of the controller's rebuildable state —
                     placement, per-host states, retry counters, RNG
                     stream positions — cross-checked during recovery
    COMMIT           the terminal record: completion time + a digest of
                     the controller's final recoverable state (which the
                     metrics document is a deterministic function of);
                     followed by END

**Recovery model.**  The campaign is a seeded deterministic simulation, so
the volatile state a crash destroys (generator frames, the event queue)
is rebuilt by *verified replay*: :func:`recover` reads the journal's valid
prefix, reconstructs the controller from ``CAMPAIGN_META``, and re-runs
the campaign with the journal in *replay mode* — every record the
controller would write is byte-compared against the journaled prefix
(divergence fails closed with :class:`~repro.errors.JournalDivergence`,
the discipline interrupted migrations demand: never half-applied), and
once the prefix is exhausted the journal switches back to append mode and
the campaign continues from exactly where the crash cut it off.

**Torn-write policy.**  A crash can tear the last record mid-write.  On
resume the valid prefix wins: the torn tail is truncated from the file
and reported loudly (``torn_bytes``/``torn_error`` on the journal, the
``journal_torn_bytes_total`` metric, a stderr warning in the CLI).  Any
CRC-valid prefix is trusted; bytes after a valid END frame are corruption,
not a torn write, and fail loudly instead.

Crash-point fault injection (``crash_after=N``) raises
:class:`~repro.errors.JournalCrash` immediately after the Nth record
reaches the file — the hook the kill-at-every-record resume tests and the
CI smoke job drive.
"""

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import JournalCrash, JournalDivergence, JournalError
from repro.io.frames import (
    FRAME_OVERHEAD,
    Packer,
    Unpacker,
    decode_frame,
    encode_frame,
)
from repro.obs import NULL_TRACER, Span
from repro.obs.metrics import MetricsRegistry

JOURNAL_FORMAT = "hypertp-journal"
JOURNAL_VERSION = 1

#: journal frame types (frame type 0 is the codec's END marker)
CAMPAIGN_META_FRAME = 0x10
HOST_TRANSITION_FRAME = 0x11
WAVE_BARRIER_FRAME = 0x12
CHECKPOINT_FRAME = 0x13
COMMIT_FRAME = 0x14

FRAME_NAMES = {
    CAMPAIGN_META_FRAME: "CAMPAIGN_META",
    HOST_TRANSITION_FRAME: "HOST_TRANSITION",
    WAVE_BARRIER_FRAME: "WAVE_BARRIER",
    CHECKPOINT_FRAME: "CHECKPOINT",
    COMMIT_FRAME: "COMMIT",
}

#: the legal WAVE_BARRIER kinds, in the order a wave passes them
BARRIER_KINDS = ("release", "evac-done", "wave-done")


# -- record payload codecs ----------------------------------------------------


def encode_meta(meta: Dict) -> bytes:
    """CAMPAIGN_META payload: canonical sorted-key JSON."""
    return json.dumps(meta, sort_keys=True).encode("utf-8")


def decode_meta(payload: bytes) -> Dict:
    try:
        meta = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise JournalError(f"malformed CAMPAIGN_META payload: {exc}")
    if meta.get("format") != JOURNAL_FORMAT:
        raise JournalError(
            f"not a campaign journal: format {meta.get('format')!r}, "
            f"want {JOURNAL_FORMAT!r}"
        )
    if meta.get("version") != JOURNAL_VERSION:
        raise JournalError(
            f"unsupported journal version {meta.get('version')!r}"
        )
    return meta


def encode_transition(seq: int, time_s: float, host: str, source: str,
                      target: str, reason: str,
                      into: Optional[Packer] = None) -> bytes:
    """Encode one HOST_TRANSITION payload.

    ``into`` lets the journal reuse one :class:`Packer` across the
    thousands of transitions a campaign appends (see
    :meth:`Packer.reset`); callers without a hot path just omit it.
    """
    packer = into.reset() if into is not None else Packer()
    packer.u32(seq).f64(time_s).string(host)
    packer.string(source).string(target).string(reason)
    return packer.bytes()


def decode_transition(payload: bytes) -> Dict:
    unpacker = Unpacker(payload)
    record = {
        "seq": unpacker.u32(),
        "time_s": unpacker.f64(),
        "host": unpacker.string(),
        "source": unpacker.string(),
        "target": unpacker.string(),
        "reason": unpacker.string(),
    }
    unpacker.expect_end()
    return record


def encode_barrier(seq: int, time_s: float, wave: int, kind: str) -> bytes:
    if kind not in BARRIER_KINDS:
        raise JournalError(
            f"unknown wave-barrier kind {kind!r}; want one of {BARRIER_KINDS}"
        )
    packer = Packer()
    packer.u32(seq).f64(time_s).u32(wave).string(kind)
    return packer.bytes()


def decode_barrier(payload: bytes) -> Dict:
    unpacker = Unpacker(payload)
    record = {
        "seq": unpacker.u32(),
        "time_s": unpacker.f64(),
        "wave": unpacker.u32(),
        "kind": unpacker.string(),
    }
    unpacker.expect_end()
    return record


def encode_checkpoint(seq: int, time_s: float, digest: bytes,
                      done_hosts: int, migrations_executed: int) -> bytes:
    if len(digest) != 32:
        raise JournalError(
            f"checkpoint digest must be 32 bytes, got {len(digest)}"
        )
    packer = Packer()
    packer.u32(seq).f64(time_s).raw(digest)
    packer.u32(done_hosts).u32(migrations_executed)
    return packer.bytes()


def decode_checkpoint(payload: bytes) -> Dict:
    unpacker = Unpacker(payload)
    record = {
        "seq": unpacker.u32(),
        "time_s": unpacker.f64(),
        "digest": unpacker.raw(32).hex(),
        "done_hosts": unpacker.u32(),
        "migrations_executed": unpacker.u32(),
    }
    unpacker.expect_end()
    return record


def encode_commit(seq: int, completed_at_s: float, digest: bytes) -> bytes:
    if len(digest) != 32:
        raise JournalError(
            f"commit digest must be 32 bytes, got {len(digest)}"
        )
    packer = Packer()
    packer.u32(seq).f64(completed_at_s).raw(digest)
    return packer.bytes()


def decode_commit(payload: bytes) -> Dict:
    unpacker = Unpacker(payload)
    record = {
        "seq": unpacker.u32(),
        "completed_at_s": unpacker.f64(),
        "digest": unpacker.raw(32).hex(),
    }
    unpacker.expect_end()
    return record


_DECODERS = {
    CAMPAIGN_META_FRAME: decode_meta,
    HOST_TRANSITION_FRAME: decode_transition,
    WAVE_BARRIER_FRAME: decode_barrier,
    CHECKPOINT_FRAME: decode_checkpoint,
    COMMIT_FRAME: decode_commit,
}


def decode_record(frame_type: int, payload: bytes):
    """Decode one journal record payload into a plain dict (introspection)."""
    decoder = _DECODERS.get(frame_type)
    if decoder is None:
        raise JournalError(f"unknown journal frame type {frame_type:#x}")
    return decoder(payload)


# -- reading ------------------------------------------------------------------


@dataclass
class JournalScan:
    """The result of scanning journal bytes with the valid-prefix policy."""

    #: CRC-valid records in file order, as ``(frame_type, payload)``
    records: List[Tuple[int, bytes]] = field(default_factory=list)
    #: the codec END marker was present (clean close)
    complete: bool = False
    #: a COMMIT record was present (campaign finished)
    committed: bool = False
    #: byte length of the valid prefix
    valid_bytes: int = 0
    #: bytes of torn tail discarded after the valid prefix
    torn_bytes: int = 0
    #: the decode error that cut the scan short, for loud reporting
    torn_error: Optional[str] = None


def scan_journal(data: bytes) -> JournalScan:
    """Parse journal bytes, applying the torn-write recovery policy.

    The valid prefix wins: records parse until the first CRC/truncation
    failure, which marks the torn tail.  Bytes *after* a valid END frame
    are not a torn write — a crash cannot append past a close — so they
    raise :class:`JournalError` instead of being silently dropped.
    """
    scan = JournalScan()
    offset = 0
    while offset < len(data):
        try:
            frame_type, payload, consumed = decode_frame(data, offset)
        except Exception as exc:  # StateFormatError; keep the valid prefix
            scan.torn_bytes = len(data) - offset
            scan.torn_error = str(exc)
            return scan
        offset += consumed
        if frame_type == 0:  # END
            scan.complete = True
            scan.valid_bytes = offset
            if offset < len(data):
                raise JournalError(
                    f"{len(data) - offset} bytes after the END frame: "
                    f"corrupt journal, not a torn write"
                )
            return scan
        if frame_type not in _DECODERS:
            raise JournalError(
                f"unknown journal frame type {frame_type:#x} at byte "
                f"offset {offset - consumed}"
            )
        if frame_type == COMMIT_FRAME:
            scan.committed = True
        scan.records.append((frame_type, payload))
        scan.valid_bytes = offset
    return scan


def read_journal(path: str) -> JournalScan:
    """Scan a journal file with the valid-prefix-wins policy."""
    try:
        with open(path, "rb") as handle:
            return scan_journal(handle.read())
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}")


def dump_records(path: str) -> List[Dict]:
    """Decode every valid record of a journal file (debugging/tests)."""
    scan = read_journal(path)
    return [
        {"type": FRAME_NAMES[frame_type], **_as_dict(frame_type, payload)}
        for frame_type, payload in scan.records
    ]


def _as_dict(frame_type: int, payload: bytes) -> Dict:
    record = decode_record(frame_type, payload)
    return record if isinstance(record, dict) else {"meta": record}


# -- the journal --------------------------------------------------------------


class CampaignJournal:
    """Write-ahead log of one campaign, with a verified-replay resume mode.

    Constructed via :meth:`create` (fresh campaign) or :meth:`resume`
    (recover after a crash).  The controller calls :meth:`transition`,
    :meth:`wave_barrier`, :meth:`checkpoint` and :meth:`commit`; in
    replay mode each call is byte-verified against the journaled prefix,
    after which calls append — written *before* the caller proceeds,
    which is what makes the log write-ahead.

    **Group commit.**  Transition appends are queued in call order and
    materialized/flushed at wave boundaries (:meth:`wave_barrier`,
    :meth:`checkpoint`, :meth:`commit`, :meth:`close`) rather than per
    record: recovery replays the valid prefix and re-derives the rest
    deterministically, so a hard kill mid-wave costs at most one wave of
    *re-executed* work, never correctness — and the campaign's hot path
    pays a list append per transition instead of an encode, a CRC and a
    write.  The file bytes are identical to eager appends.
    """

    def __init__(self, path: str, handle, meta: Dict,
                 replay: Optional[List[Tuple[int, bytes]]] = None,
                 complete: bool = False,
                 torn_bytes: int = 0, torn_error: Optional[str] = None,
                 registry: Optional[MetricsRegistry] = None,
                 tracer=NULL_TRACER,
                 crash_after: Optional[int] = None):
        self.path = path
        self._handle = handle
        self.meta = meta
        self._resumed = replay is not None
        self._replay = list(replay) if replay is not None else []
        self._cursor = 0
        self._seq = 1 + len(self._replay)  # META is record 0
        self._complete = complete
        self._closed = False
        self.torn_bytes = torn_bytes
        self.torn_error = torn_error
        self.records_appended = 0
        self.records_replayed = 0
        self.bytes_appended = 0
        self._crash_after = crash_after
        self._tracer = tracer
        self._packer = Packer()  # reused per record; see encode_transition
        #: transitions queued in append mode, materialized at group commit
        self._pending: List[Tuple] = []
        self._replay_t0: Optional[float] = None
        self._replay_horizon_s: Optional[float] = None
        self._m_records = self._m_bytes = self._m_replayed = None
        if registry is not None:
            self._m_records = registry.counter(
                "journal_records_total", "journal records appended")
            self._m_bytes = registry.counter(
                "journal_bytes_total", "journal bytes appended")
            self._m_replayed = registry.counter(
                "journal_replayed_records_total",
                "journaled records verified during recovery")
            registry.counter(
                "journal_torn_bytes_total",
                "torn-tail bytes discarded on recovery").inc(torn_bytes)

    # -- construction --------------------------------------------------------

    @classmethod
    def create(cls, path: str, meta: Dict, *,
               registry: Optional[MetricsRegistry] = None,
               tracer=NULL_TRACER,
               crash_after: Optional[int] = None) -> "CampaignJournal":
        """Start a fresh journal: truncate ``path``, write CAMPAIGN_META."""
        meta = dict(meta)
        meta.setdefault("format", JOURNAL_FORMAT)
        meta.setdefault("version", JOURNAL_VERSION)
        decode_meta(encode_meta(meta))  # validate before the first write
        handle = open(path, "wb")
        journal = cls(path, handle, meta, registry=registry, tracer=tracer,
                      crash_after=crash_after)
        # META is record 0; appended records claim seqs from 1 (__init__).
        journal._append(CAMPAIGN_META_FRAME, encode_meta(meta))
        return journal

    @classmethod
    def resume(cls, path: str, *,
               registry: Optional[MetricsRegistry] = None,
               tracer=NULL_TRACER,
               crash_after: Optional[int] = None) -> "CampaignJournal":
        """Reopen a crashed (or finished) journal for verified replay.

        Applies the torn-write policy: the valid prefix wins, a torn tail
        is truncated from the file and reported loudly via
        :attr:`torn_bytes`/:attr:`torn_error`.
        """
        scan = read_journal(path)
        if not scan.records:
            raise JournalError(
                f"{path}: no valid records — cannot recover a campaign "
                f"from an empty journal"
            )
        first_type, first_payload = scan.records[0]
        if first_type != CAMPAIGN_META_FRAME:
            raise JournalError(
                f"{path}: first record is {FRAME_NAMES.get(first_type)}, "
                f"not CAMPAIGN_META — cannot recover"
            )
        meta = decode_meta(first_payload)
        if scan.torn_bytes:
            # Valid prefix wins; make the discard durable before appending.
            with open(path, "r+b") as trunc:
                trunc.truncate(scan.valid_bytes)
        handle = open(path, "ab")
        return cls(path, handle, meta, replay=scan.records[1:],
                   complete=scan.complete,
                   torn_bytes=scan.torn_bytes, torn_error=scan.torn_error,
                   registry=registry, tracer=tracer, crash_after=crash_after)

    # -- status --------------------------------------------------------------

    @property
    def is_resume(self) -> bool:
        """True for a journal reopened via :meth:`resume`."""
        return self._resumed

    @property
    def replaying(self) -> bool:
        """True while calls verify against the journaled prefix."""
        return self._cursor < len(self._replay)

    @property
    def pending_replay(self) -> int:
        """Journaled records not yet verified by the recovering campaign."""
        return len(self._replay) - self._cursor

    @property
    def records_total(self) -> int:
        """Records durable in the file right now (including META)."""
        base = 1 + len(self._replay) if self._resumed else 0
        return base + self.records_appended

    # -- the write-ahead interface -------------------------------------------

    def transition(self, time_s: float, host: str, source: str,
                   target: str, reason: str = "") -> None:
        """Journal one host state change (called *before* the mutation).

        In append mode the record is queued and materialized at the next
        group-commit point (:meth:`wave_barrier`, :meth:`checkpoint`,
        :meth:`commit`, :meth:`close`): the append call — and with it the
        write-ahead ordering — still precedes the mutation, but the
        campaign's hot path pays one list append per transition instead
        of an encode and a file write.  File bytes are identical to
        eager appends; only the moment they reach the handle moves.
        """
        if self.replaying:
            payload = encode_transition(self._next_seq(), time_s, host,
                                        source, target, reason,
                                        into=self._packer)
            self._record(HOST_TRANSITION_FRAME, payload, time_s)
            return
        self._check_open(HOST_TRANSITION_FRAME)
        self._pending.append((self._next_seq(), time_s, host, source,
                              target, reason))

    def wave_barrier(self, time_s: float, wave: int, kind: str) -> None:
        """Journal one wave boundary (called *before* waiters wake).

        Barriers are the group-commit points: the wave's buffered
        transitions reach the OS here.
        """
        payload = encode_barrier(self._next_seq(), time_s, wave, kind)
        self._record(WAVE_BARRIER_FRAME, payload, time_s)
        self._flush()

    def checkpoint(self, time_s: float, digest: bytes, done_hosts: int,
                   migrations_executed: int) -> None:
        """Journal a state digest; replay cross-checks it byte-for-byte."""
        payload = encode_checkpoint(self._next_seq(), time_s, digest,
                                    done_hosts, migrations_executed)
        self._record(CHECKPOINT_FRAME, payload, time_s)
        self._flush()

    def commit(self, completed_at_s: float, digest: bytes) -> None:
        """Terminate the journal: COMMIT record, END frame, close.

        In replay mode the COMMIT must match the journaled one — the
        enforcement teeth of the resume determinism contract: a resumed
        campaign that would produce a different metrics document than the
        journaled COMMIT promises fails closed here.
        """
        payload = encode_commit(self._next_seq(), completed_at_s, digest)
        self._record(COMMIT_FRAME, payload, completed_at_s)
        if not self._complete:
            end = encode_frame(0, b"")
            self._handle.write(end)
            self._handle.flush()
            self.bytes_appended += len(end)
            if self._m_bytes is not None:
                self._m_bytes.inc(len(end))
            self._complete = True
        self.close()

    def close(self) -> None:
        """Flush queued records and release the file handle (without END —
        a crashed/abandoned log stays resumable)."""
        if self._closed:
            return
        try:
            self._flush_pending()
            self._handle.flush()
        finally:
            # Crash injection inside the flush loop closes the journal
            # itself before raising; don't close the handle twice.
            if not self._closed:
                self._handle.close()
                self._closed = True

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- recovery reporting ---------------------------------------------------

    def recovery_spans(self) -> List[Span]:
        """Spans describing the verified-replay window (``journal`` track).

        Kept out of the campaign tracer on purpose: the resumed trace
        artifact must stay byte-identical to the uninterrupted one.
        """
        if self._replay_t0 is None or self._replay_horizon_s is None:
            return []
        return [Span(
            name="journal.recover",
            category="journal",
            start_s=self._replay_t0,
            end_s=self._replay_horizon_s,
            track="journal",
            args={
                "records_replayed": self.records_replayed,
                "torn_bytes": self.torn_bytes,
            },
        )]

    # -- internals ------------------------------------------------------------

    def _next_seq(self) -> int:
        """Claim the next record seq (replay verifies, append consumes)."""
        if self.replaying:
            return 1 + self._cursor
        seq = self._seq
        self._seq += 1
        return seq

    def _check_open(self, frame_type: int) -> None:
        if self._closed:
            raise JournalError(
                f"journal {self.path} is closed; cannot record "
                f"{FRAME_NAMES.get(frame_type, frame_type)}"
            )
        if not self.replaying and self._complete:
            raise JournalError(
                f"journal {self.path} already committed; cannot append "
                f"{FRAME_NAMES.get(frame_type, frame_type)}"
            )

    def _record(self, frame_type: int, payload: bytes,
                time_s: float) -> None:
        self._check_open(frame_type)
        if self.replaying:
            self._verify(frame_type, payload, time_s)
        else:
            self._flush_pending()
            self._append(frame_type, payload)

    def _verify(self, frame_type: int, payload: bytes,
                time_s: float) -> None:
        expected_type, expected_payload = self._replay[self._cursor]
        if frame_type != expected_type or payload != expected_payload:
            raise JournalDivergence(
                f"replay diverged at record {1 + self._cursor}: journal "
                f"holds {FRAME_NAMES.get(expected_type)} "
                f"{decode_record(expected_type, expected_payload)!r}, "
                f"recovering campaign produced "
                f"{FRAME_NAMES.get(frame_type)} "
                f"{decode_record(frame_type, payload)!r}"
            )
        self._cursor += 1
        self.records_replayed += 1
        if self._m_replayed is not None:
            self._m_replayed.inc()
        if self._replay_t0 is None:
            self._replay_t0 = time_s
            self._replay_horizon_s = time_s
        else:
            self._replay_t0 = min(self._replay_t0, time_s)
            self._replay_horizon_s = max(self._replay_horizon_s, time_s)

    def _flush(self) -> None:
        """Push buffered appends to the OS (the group-commit point)."""
        if not self._closed:
            self._flush_pending()
            self._handle.flush()

    def _flush_pending(self) -> None:
        """Materialize queued transitions into the file, in call order.

        Runs as a tight batch loop so the encode/CRC/write work happens
        with hot caches at group-commit points instead of scattered
        through the simulation.  Each record still routes through
        :meth:`_append`, so ``crash_after`` fires at exact record
        boundaries; on an injected crash the not-yet-written tail of the
        queue is discarded, exactly like a dead process's buffer.
        """
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        if self._crash_after is None:
            # Bulk path: bound attrs and batched bookkeeping; same bytes.
            write = self._handle.write
            packer = self._packer
            total = 0
            for args in pending:
                encoded = encode_frame(
                    HOST_TRANSITION_FRAME,
                    encode_transition(*args, into=packer))
                write(encoded)
                total += len(encoded)
            self.records_appended += len(pending)
            self.bytes_appended += total
            if self._m_records is not None:
                self._m_records.inc(len(pending))
            if self._m_bytes is not None:
                self._m_bytes.inc(total)
            return
        for args in pending:
            self._append(HOST_TRANSITION_FRAME,
                         encode_transition(*args, into=self._packer))

    def _append(self, frame_type: int, payload: bytes) -> None:
        encoded = encode_frame(frame_type, payload)
        self._handle.write(encoded)
        self.records_appended += 1
        self.bytes_appended += len(encoded)
        if self._m_records is not None:
            self._m_records.inc()
        if self._m_bytes is not None:
            self._m_bytes.inc(len(encoded))
        if self._crash_after is not None \
                and self.records_appended >= self._crash_after:
            # close() flushes, so the file holds exactly the records
            # appended so far — crash points stay exact record boundaries
            # even under group commit.  Then drop the handle like a dead
            # process would before surfacing the crash.
            self.close()
            raise JournalCrash(
                f"injected crash after journal record "
                f"{self.records_appended} "
                f"({FRAME_NAMES.get(frame_type, frame_type)}, "
                f"{self.bytes_appended} bytes durable)"
            )


# -- campaign glue ------------------------------------------------------------


def campaign_meta(config, injector, retry) -> Dict:
    """The CAMPAIGN_META document for a controller's full configuration.

    The mechanism policy is journaled only when it differs from the
    hybrid default: default campaigns stay byte-identical to journals
    written before the policy knob existed, and :func:`recover` falls
    back to the FleetConfig default for the missing key either way.
    """
    meta = {
        "format": JOURNAL_FORMAT,
        "version": JOURNAL_VERSION,
        "config": {
            "hosts": config.hosts,
            "vms_per_host": config.vms_per_host,
            "inplace_fraction": config.inplace_fraction,
            "group_size": config.group_size,
            "seed": config.seed,
            "concurrency": config.concurrency,
            "sequential_groups": config.sequential_groups,
            "migration_streams": config.migration_streams,
            "stall_timeout_s": config.stall_timeout_s,
            "kexec_watchdog_s": config.kexec_watchdog_s,
            "verify_fixed_s": config.verify_fixed_s,
            "verify_per_vm_s": config.verify_per_vm_s,
            "trigger_cve": config.trigger_cve,
            "current_hypervisor": config.current_hypervisor,
            "pool": list(config.pool),
            "disclosure_at_s": config.disclosure_at_s,
        },
        "failures": {
            "rates": {phase.value: rate
                      for phase, rate in sorted(injector.rates.items(),
                                                key=lambda kv: kv[0].value)},
            "seed": injector.seed,
        },
        "retry": {
            "max_retries": retry.max_retries,
            "backoff_base_s": retry.backoff_base_s,
            "backoff_factor": retry.backoff_factor,
            "backoff_max_s": retry.backoff_max_s,
        },
    }
    if config.mechanism != "hybrid":
        meta["config"]["mechanism"] = config.mechanism
    if config.target_override is not None:
        meta["config"]["target_override"] = config.target_override
    return meta


def state_digest(document: Dict) -> bytes:
    """SHA-256 over a canonical JSON rendering of a state document."""
    return hashlib.sha256(
        json.dumps(document, sort_keys=True).encode("utf-8")
    ).digest()


def recover(path: str, *, registry: Optional[MetricsRegistry] = None,
            tracer=NULL_TRACER, journal_registry=None,
            crash_after: Optional[int] = None):
    """Rebuild a campaign controller from a journal.

    Returns ``(controller, journal)``: the controller is reconstructed
    from the journal's ``CAMPAIGN_META`` (config, failure rates, injector
    seed, retry policy) with the journal attached in replay mode —
    ``controller.run()`` replays the journaled prefix under byte
    verification, then continues the campaign, appending new records.
    ``tracer``/``registry`` attach to the controller exactly as on an
    uninterrupted run; ``journal_registry`` receives the ``journal_*``
    operational metrics.
    """
    from repro.fleet.controller import FleetConfig, FleetController
    from repro.fleet.failures import FailureInjector, FailurePhase, RetryPolicy

    journal = CampaignJournal.resume(path, registry=journal_registry,
                                     tracer=tracer, crash_after=crash_after)
    meta = journal.meta
    try:
        config_kwargs = dict(meta["config"])
        config_kwargs["pool"] = tuple(config_kwargs["pool"])
        config = FleetConfig(**config_kwargs)
        injector = FailureInjector(
            {FailurePhase(name): rate
             for name, rate in meta["failures"]["rates"].items()},
            seed=meta["failures"]["seed"],
        )
        retry = RetryPolicy(**meta["retry"])
    except (KeyError, TypeError, ValueError) as exc:
        journal.close()
        raise JournalError(
            f"{path}: CAMPAIGN_META does not describe a recoverable "
            f"campaign: {exc!r}"
        )
    controller = FleetController(config, injector=injector, retry=retry,
                                 tracer=tracer, registry=registry,
                                 journal=journal)
    return controller, journal


__all__ = [
    "JOURNAL_FORMAT",
    "JOURNAL_VERSION",
    "CAMPAIGN_META_FRAME",
    "HOST_TRANSITION_FRAME",
    "WAVE_BARRIER_FRAME",
    "CHECKPOINT_FRAME",
    "COMMIT_FRAME",
    "BARRIER_KINDS",
    "CampaignJournal",
    "JournalScan",
    "scan_journal",
    "read_journal",
    "dump_records",
    "decode_record",
    "campaign_meta",
    "state_digest",
    "recover",
]
