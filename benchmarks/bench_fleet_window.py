"""Fleet vulnerability window vs fleet size and failure rate.

The paper measures the transplant itself (Figs. 6-13); this bench seeds the
perf trajectory for the fleet control plane layered on top: how the
disclosure->remediated window distribution (p50/p95/p99/max) scales from 10
to 1000 hosts, and how injected per-phase failures (kexec hang, migration
stall, UISR verify mismatch) stretch the tail.

Emits ``BENCH_fleet_window.json`` next to this file (override with
``--json PATH``); ``--smoke`` restricts to the 10-host column for CI.
A wall-clock guard asserts the 1000-host run stays sub-superlinear — the
simulator is O(n log n) in events, so 100x the hosts must cost far less
than 10000x the wall time.
"""

import argparse
import json
import time
from pathlib import Path

from repro.bench.report import format_table, print_experiment
from repro.fleet import (
    FailureInjector,
    FleetConfig,
    FleetController,
    RetryPolicy,
)

FLEET_SIZES = [10, 100, 1000]
SMOKE_SIZES = [10]
FAIL_RATES = [0.0, 0.01, 0.05]
SEED = 42

DEFAULT_JSON_PATH = Path(__file__).resolve().parent / "BENCH_fleet_window.json"


def measure(hosts, fail_rate, seed=SEED):
    """One campaign; returns the metrics document plus wall-clock cost."""
    config = FleetConfig(hosts=hosts, vms_per_host=10, inplace_fraction=0.8,
                         group_size=max(2, hosts // 5), seed=seed,
                         concurrency=8)
    controller = FleetController(
        config,
        injector=FailureInjector(fail_rate, seed=seed),
        retry=RetryPolicy(max_retries=3, backoff_base_s=5.0),
    )
    started = time.perf_counter()
    metrics = controller.run()
    wall_s = time.perf_counter() - started
    return {
        "hosts": hosts,
        "fail_rate": fail_rate,
        "seed": seed,
        "wall_s": round(wall_s, 4),
        "done_hosts": metrics.done_hosts,
        "rolled_back_hosts": metrics.rolled_back_hosts,
        "retries_total": metrics.retries_total,
        "rollbacks_total": metrics.rollbacks_total,
        "migrations_executed": metrics.migrations_executed,
        "fleet_window_s": metrics.fleet_window_s,
        "percentiles_s": metrics.window_percentiles_s,
    }


def run(smoke=False):
    sizes = SMOKE_SIZES if smoke else FLEET_SIZES
    return [measure(hosts, rate)
            for hosts in sizes for rate in FAIL_RATES]


def write_json(results, path=DEFAULT_JSON_PATH):
    document = {
        "format": "hypertp-bench-fleet-window",
        "version": 1,
        "seed": SEED,
        "results": results,
    }
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True))
    return path


def to_rows(results):
    rows = []
    for entry in results:
        pct = entry["percentiles_s"]
        rows.append([
            entry["hosts"],
            f"{entry['fail_rate']:.0%}",
            entry["done_hosts"],
            entry["rolled_back_hosts"],
            entry["retries_total"],
            f"{pct['p50']:.1f}" if pct else "-",
            f"{pct['p95']:.1f}" if pct else "-",
            f"{pct['p99']:.1f}" if pct else "-",
            f"{pct['max']:.1f}" if pct else "-",
            f"{entry['wall_s']:.3f}",
        ])
    return rows


HEADERS = ["hosts", "fail", "done", "rolled back", "retries",
           "p50 (s)", "p95 (s)", "p99 (s)", "max (s)", "wall (s)"]


def test_fleet_window_sweep(benchmark):
    results = benchmark.pedantic(run, kwargs={"smoke": True},
                                 rounds=1, iterations=1)
    write_json(results)
    print_experiment("fleet window", "percentiles vs size and failure rate",
                     format_table(HEADERS, to_rows(results)))


def test_wall_clock_guard():
    """1000 hosts must not blow up superlinearly over 100 hosts."""
    small = measure(100, 0.0)
    large = measure(1000, 0.0)
    assert large["done_hosts"] + large["rolled_back_hosts"] == 1000
    # Generous absolute ceiling: the run takes well under a second today.
    assert large["wall_s"] < 60.0
    # 10x the hosts may cost ~10x wall plus constant overhead, never ~100x.
    assert large["wall_s"] < 30 * max(small["wall_s"], 0.01)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="10-host column only (CI)")
    parser.add_argument("--json", dest="json_path", metavar="PATH",
                        default=str(DEFAULT_JSON_PATH))
    args = parser.parse_args()
    results = run(smoke=args.smoke)
    path = write_json(results, args.json_path)
    print_experiment("fleet window", "percentiles vs size and failure rate",
                     format_table(HEADERS, to_rows(results)))
    print(f"JSON written to {path}")


if __name__ == "__main__":
    main()
