"""Deterministic sharding and order-independent result merging.

Two obligations make parallel runs trustworthy:

* **Seed derivation** — every shard's randomness comes from
  :func:`derive_seed`, a pure function of the root seed and the shard's
  stable identity (never of worker index, pid or scheduling).  Shard 3
  draws the same random stream whether it runs first, last, inline or in
  a subprocess.

* **Order-independent merging** — shard outputs come back in completion
  order, which is nondeterministic; the merge functions here are written
  so the merged artifact is byte-identical regardless.  Counters sum,
  gauges max (both commutative), histogram buckets sum after the bounds
  are checked for identity, and traces are rebuilt from sorted shard
  labels so the exporter's stable pid/tid remap sees the same track set
  every run.

All inputs are the plain-dict *snapshots* of registries and spans — not
the live objects — because that is what crosses the worker pipe.
"""

import hashlib
from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ParError
from repro.obs.metrics import SNAPSHOT_FORMAT, SNAPSHOT_VERSION
from repro.obs.trace import Span, Trace


def derive_seed(root_seed: int, *parts) -> int:
    """A shard's seed: a pure hash of the root seed and its identity.

    ``parts`` name the shard (e.g. ``("fleet_window", 1000, 0.01)``);
    the result is a 63-bit integer stable across processes, platforms
    and Python hash randomization.
    """
    digest = hashlib.sha256()
    digest.update(str(int(root_seed)).encode("ascii"))
    for part in parts:
        digest.update(b"\x1f")
        digest.update(repr(part).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") >> 1


# -- metrics snapshots --------------------------------------------------------


def merge_snapshots(snapshots: Sequence[Dict[str, object]]
                    ) -> Dict[str, object]:
    """Merge per-shard :meth:`MetricsRegistry.snapshot` dicts into one.

    Counters sum and histograms sum bucket-wise (both commutative and
    associative, so completion order cannot leak into the result); gauges
    resolve to the **latest writer** — the snapshot whose ``seq`` stamp
    (see :class:`repro.obs.metrics.UpdateSequencer`) is highest, with the
    larger value breaking stamp ties.  Taking a lexicographic max of
    ``(seq, value)`` keeps the reduction commutative and associative
    while staying correct for gauges that legitimately decrease (an
    in-flight count ending at 0 must merge to 0, not its peak).  Metrics
    present in only some shards merge with the rest absent-as-zero.
    Shards that registered the *same* histogram with different bucket
    bounds are a configuration bug and raise :class:`ParError`.
    """
    merged: Dict[str, Dict[str, object]] = {}
    for snapshot in snapshots:
        if snapshot.get("format") != SNAPSHOT_FORMAT:
            raise ParError(
                f"cannot merge metrics snapshot with format "
                f"{snapshot.get('format')!r}; want {SNAPSHOT_FORMAT!r}"
            )
        for name, metric in snapshot.get("metrics", {}).items():
            existing = merged.get(name)
            if existing is None:
                merged[name] = _copy_metric(metric)
            else:
                _merge_metric(name, existing, metric)
    return {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "metrics": {name: merged[name] for name in sorted(merged)},
    }


def _copy_metric(metric: Dict[str, object]) -> Dict[str, object]:
    copy = dict(metric)
    if metric.get("kind") == "histogram":
        copy["buckets"] = [dict(bucket) for bucket in metric["buckets"]]
    return copy


def _merge_metric(name: str, into: Dict[str, object],
                  metric: Dict[str, object]) -> None:
    kind = metric.get("kind")
    if kind != into.get("kind"):
        raise ParError(
            f"metric {name!r} has kind {kind!r} in one shard and "
            f"{into.get('kind')!r} in another"
        )
    if kind == "counter":
        into["value"] = into["value"] + metric["value"]
    elif kind == "gauge":
        # Latest writer wins; snapshots predating the seq stamp sort as 0.
        challenger = (metric.get("seq", 0), metric["value"])
        if challenger > (into.get("seq", 0), into["value"]):
            into["seq"], into["value"] = challenger
    elif kind == "histogram":
        _merge_histogram(name, into, metric)
    else:
        raise ParError(f"metric {name!r} has unknown kind {kind!r}")


def _merge_histogram(name: str, into: Dict[str, object],
                     metric: Dict[str, object]) -> None:
    bounds_a = [bucket["le"] for bucket in into["buckets"]]
    bounds_b = [bucket["le"] for bucket in metric["buckets"]]
    if bounds_a != bounds_b:
        raise ParError(
            f"histogram {name!r} has different bucket bounds across "
            f"shards: {bounds_a} vs {bounds_b}"
        )
    for target, source in zip(into["buckets"], metric["buckets"]):
        target["count"] += source["count"]
    into["count"] = into["count"] + metric["count"]
    into["sum"] = into["sum"] + metric["sum"]
    into["min"] = _merge_extreme(into["min"], metric["min"], min)
    into["max"] = _merge_extreme(into["max"], metric["max"], max)


def _merge_extreme(a: Optional[float], b: Optional[float], pick):
    if a is None:
        return b
    if b is None:
        return a
    return pick(a, b)


# -- trace spans --------------------------------------------------------------


def span_to_payload(span: Span) -> Dict[str, object]:
    """A span as plain picklable data for the worker pipe."""
    return {
        "name": span.name,
        "category": span.category,
        "start_s": span.start_s,
        "end_s": span.end_s,
        "track": span.track,
        "args": dict(span.args) if span.args else None,
    }


def span_from_payload(payload: Dict[str, object]) -> Span:
    return Span(
        name=payload["name"],
        category=payload["category"],
        start_s=payload["start_s"],
        end_s=payload["end_s"],
        track=payload.get("track", "host"),
        args=payload.get("args"),
    )


def spans_to_payload(spans: Iterable[Span]) -> List[Dict[str, object]]:
    """Serialize a trace (or any span iterable) for the worker pipe."""
    return [span_to_payload(span) for span in spans]


def merge_traces(shards: Sequence[Tuple[str, Iterable[Dict[str, object]]]],
                 prefix: bool = True) -> Trace:
    """One campaign trace out of per-shard span payloads.

    ``shards`` pairs each shard's stable label with its span payloads.
    With ``prefix=True`` (sweeps) every track is namespaced under its
    shard label so cells don't collide; with ``prefix=False`` (a single
    campaign routed through the pool) spans merge verbatim, reproducing
    the inline trace byte-for-byte.  Shards are processed in sorted-label
    order and the exporter assigns pids/tids from sorted track names, so
    the output is identical for any completion order.
    """
    trace = Trace()
    seen = set()
    for label, payloads in sorted(shards, key=lambda pair: pair[0]):
        if label in seen:
            raise ParError(f"duplicate shard label {label!r} in trace merge")
        seen.add(label)
        for payload in payloads:
            span = span_from_payload(payload)
            if prefix:
                span = replace(span, track=f"{label}/{span.track}")
            trace.add(span)
    return trace
