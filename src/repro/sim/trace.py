"""Span tracing and chrome-trace export.

Turns transplant reports and timelines into span lists and into the Chrome
``chrome://tracing`` / Perfetto JSON format, so a run can be inspected on a
real timeline viewer.  Spans are pure data; builders exist for the two
report types.
"""

import json
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ReproError


@dataclass(frozen=True)
class Span:
    """One named interval on the simulated timeline."""

    name: str
    category: str
    start_s: float
    end_s: float
    track: str = "host"
    args: Optional[Dict[str, object]] = None

    def __post_init__(self) -> None:
        if self.end_s < self.start_s:
            raise ReproError(
                f"span {self.name!r} ends before it starts "
                f"({self.end_s} < {self.start_s})"
            )

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


class Trace:
    """An ordered collection of spans with an exporter."""

    def __init__(self):
        self.spans: List[Span] = []

    def add(self, span: Span) -> None:
        self.spans.append(span)

    def extend(self, spans) -> None:
        for span in spans:
            self.add(span)

    def total_span(self) -> float:
        if not self.spans:
            return 0.0
        return (max(s.end_s for s in self.spans)
                - min(s.start_s for s in self.spans))

    def to_chrome_trace(self) -> str:
        """Export as Chrome trace-event JSON (complete 'X' events, µs)."""
        events = []
        for index, span in enumerate(sorted(self.spans,
                                            key=lambda s: s.start_s)):
            events.append({
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": round(span.start_s * 1e6, 3),
                "dur": round(span.duration_s * 1e6, 3),
                "pid": 1,
                "tid": span.track,
                "args": span.args or {},
            })
        return json.dumps({"traceEvents": events,
                           "displayTimeUnit": "ms"}, indent=2)


def trace_inplace(report, start_s: float = 0.0) -> Trace:
    """Build the span timeline of one InPlaceTP run from its report.

    Matches the run's phase ordering: PRAM (pre-pause), then the downtime
    window (Translation -> Reboot -> Restoration), with the NIC re-init
    overlapping restoration on its own track.
    """
    trace = Trace()
    t = start_s
    trace.add(Span("PRAM", "prepare", t, t + report.pram_s,
                   track=report.machine))
    t += report.pram_s
    pause_start = t
    trace.add(Span("Translation", "downtime", t, t + report.translation_s,
                   track=report.machine))
    t += report.translation_s
    trace.add(Span("Reboot", "downtime", t, t + report.reboot_s,
                   track=report.machine,
                   args={"target": report.target}))
    t += report.reboot_s
    trace.add(Span("NIC re-init", "network", t, t + report.network_s,
                   track=f"{report.machine}/nic"))
    trace.add(Span("Restoration", "downtime", t, t + report.restoration_s,
                   track=report.machine))
    t += report.restoration_s
    trace.add(Span("VMs paused", "guest", pause_start, t,
                   track=f"{report.machine}/guests",
                   args={"vm_count": report.vm_count}))
    return trace


def trace_migration(report, start_s: float = 0.0) -> Trace:
    """Build the span timeline of one migration from its report."""
    trace = Trace()
    t = start_s
    for round_ in report.rounds:
        trace.add(Span(f"pre-copy round {round_.index}", "precopy",
                       t, t + round_.duration_s,
                       track=report.vm_name,
                       args={"bytes": round_.bytes_sent}))
        t += round_.duration_s
    trace.add(Span("stop-and-copy", "downtime", t, t + report.downtime_s,
                   track=report.vm_name,
                   args={"destination": report.destination}))
    return trace
