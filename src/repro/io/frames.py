"""Self-describing, CRC-checked stream frames — the one codec layer.

Every channel that moves VM state (the MigrationTP proxy wire, the PRAM
encoding parsed across the kexec boundary, UISR documents, cluster plan
blobs) wraps its payloads in the same frame format:

    +--------+---------+------+--------+-----------+-------+
    | magic  | version | type | length | payload   | crc32 |
    | u32 LE | u8      | u8   | u32 LE | length B  | u32 LE|
    +--------+---------+------+--------+-----------+-------+

The CRC32 trailer covers the header *and* the payload, so a bit flip
anywhere — magic, type tag, length field or body — fails loudly as a
:class:`~repro.errors.StateFormatError` rather than decoding to a
silently-wrong guest.  Frame type ``0`` is reserved as the END marker a
finished stream must close with; :meth:`FrameReader.expect_end` rejects
truncated streams and concatenated garbage tails alike.

The module also hosts the low-level :class:`Packer`/:class:`Unpacker`
pair (grown out of ``repro.hypervisors.state``, which re-exports them for
compatibility) — the only place in the tree allowed to touch ``struct``,
enforced by the ``io-format-hygiene`` lint rule.
"""

import struct
import zlib
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.errors import StateFormatError
from repro.obs.metrics import MetricsRegistry

FRAME_MAGIC = 0x52494F31  # "RIO1"
FRAME_VERSION = 1

#: frame type 0 terminates a finished stream (empty payload).
END_FRAME = 0

_HEADER = struct.Struct("<IBBI")
_CRC = struct.Struct("<I")
_U32 = struct.Struct("<I")

#: fixed per-frame overhead: header + CRC32 trailer.
FRAME_OVERHEAD = _HEADER.size + _CRC.size


class Packer:
    """Append-only binary writer."""

    def __init__(self):
        self._parts: List[bytes] = []
        self._length = 0

    def reset(self) -> "Packer":
        """Clear accumulated parts so one Packer can serve many records.

        High-volume encoders (the campaign journal appends thousands of
        records per run) reuse a single instance to keep per-record
        allocations — and with them GC pressure — off their hot path.
        """
        self._parts.clear()
        self._length = 0
        return self

    def u8(self, value: int) -> "Packer":
        return self._pack("<B", value)

    def u16(self, value: int) -> "Packer":
        return self._pack("<H", value)

    def u32(self, value: int) -> "Packer":
        return self._pack("<I", value)

    def u64(self, value: int) -> "Packer":
        return self._pack("<Q", value)

    def i64(self, value: int) -> "Packer":
        return self._pack("<q", value)

    def f64(self, value: float) -> "Packer":
        return self._pack("<d", value)

    def string(self, value: str) -> "Packer":
        """Length-prefixed UTF-8 string (u32 byte length + bytes)."""
        data = value.encode("utf-8")
        size = len(data)
        if size > 0xFFFFFFFF:
            raise StateFormatError(
                f"string of {size} bytes exceeds the u32 length prefix")
        # Hot path for per-record codecs (journal transitions): one
        # pre-compiled struct and two list appends, no intermediate copy.
        self._parts.append(_U32.pack(size))
        self._parts.append(data)
        self._length += 4 + size
        return self

    def raw(self, data: bytes) -> "Packer":
        if not isinstance(data, bytes):
            data = bytes(data)
        self._parts.append(data)
        self._length += len(data)
        return self

    def u64_seq(self, values: Iterable[int]) -> "Packer":
        values = list(values)
        self.u32(len(values))
        for value in values:
            self.u64(value)
        return self

    def _pack(self, fmt: str, value: int) -> "Packer":
        try:
            part = struct.pack(fmt, value)
        except struct.error as exc:
            raise StateFormatError(f"cannot pack {value!r} as {fmt}: {exc}") from exc
        self._parts.append(part)
        self._length += len(part)
        return self

    def bytes(self) -> bytes:
        return b"".join(self._parts)

    def __len__(self) -> int:
        return self._length


class Unpacker:
    """Sequential binary reader with bounds checking."""

    def __init__(self, data: bytes):
        self._data = data
        self._offset = 0

    @property
    def remaining(self) -> int:
        return len(self._data) - self._offset

    def u8(self) -> int:
        return self._unpack("<B", 1)

    def u16(self) -> int:
        return self._unpack("<H", 2)

    def u32(self) -> int:
        return self._unpack("<I", 4)

    def u64(self) -> int:
        return self._unpack("<Q", 8)

    def i64(self) -> int:
        return self._unpack("<q", 8)

    def f64(self) -> float:
        return self._unpack("<d", 8)

    def string(self) -> str:
        """Length-prefixed UTF-8 string (u32 byte length + bytes)."""
        length = self.u32()
        try:
            return self.raw(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise StateFormatError(f"malformed UTF-8 string blob: {exc}")

    def raw(self, length: int) -> bytes:
        if length < 0 or self.remaining < length:
            raise StateFormatError(
                f"truncated blob: want {length} bytes, have {self.remaining}"
            )
        chunk = self._data[self._offset:self._offset + length]
        self._offset += length
        return chunk

    def u64_seq(self) -> Tuple[int, ...]:
        count = self.u32()
        # Validate against the buffer before materializing: a corrupt
        # 4-byte count must not drive a multi-GB tuple allocation.
        if count * 8 > self.remaining:
            raise StateFormatError(
                f"truncated blob: u64 sequence of {count} needs "
                f"{count * 8} bytes, have {self.remaining}"
            )
        return tuple(self.u64() for _ in range(count))

    def expect_end(self) -> None:
        if self.remaining:
            raise StateFormatError(f"{self.remaining} trailing bytes in blob")

    def _unpack(self, fmt: str, size: int):
        if self.remaining < size:
            raise StateFormatError(
                f"truncated blob: want {size} bytes, have {self.remaining}"
            )
        (value,) = struct.unpack_from(fmt, self._data, self._offset)
        self._offset += size
        return value


class StreamMeter:
    """The bytes-in / bytes-out / dedup-hits triple for one channel.

    Counts locally (always) and mirrors into ``io_{channel}_*`` counters
    of a :class:`~repro.obs.metrics.MetricsRegistry` when one is given.
    """

    def __init__(self, channel: str,
                 registry: Optional[MetricsRegistry] = None):
        self.channel = channel
        self.bytes_in = 0
        self.bytes_out = 0
        self.dedup_hits = 0
        self._in = self._out = self._dedup = None
        if registry is not None:
            self._in = registry.counter(
                f"io_{channel}_bytes_in", f"bytes decoded from the {channel} stream")
            self._out = registry.counter(
                f"io_{channel}_bytes_out", f"bytes encoded onto the {channel} stream")
            self._dedup = registry.counter(
                f"io_{channel}_dedup_hits",
                f"page records elided by digest dedup on the {channel} stream")

    def count_in(self, amount: int) -> None:
        self.bytes_in += amount
        if self._in is not None:
            self._in.inc(amount)

    def count_out(self, amount: int) -> None:
        self.bytes_out += amount
        if self._out is not None:
            self._out.inc(amount)

    def count_dedup(self, amount: int = 1) -> None:
        self.dedup_hits += amount
        if self._dedup is not None:
            self._dedup.inc(amount)


def encode_frame(frame_type: int, payload: bytes) -> bytes:
    """One self-contained frame: header, payload, CRC32 trailer."""
    if not 0 <= frame_type <= 0xFF:
        raise StateFormatError(f"frame type {frame_type} out of range")
    if frame_type == END_FRAME and payload:
        raise StateFormatError("END frame must carry an empty payload")
    header = _HEADER.pack(FRAME_MAGIC, FRAME_VERSION, frame_type, len(payload))
    crc = zlib.crc32(payload, zlib.crc32(header))
    return header + payload + _CRC.pack(crc)


def decode_frame(data: bytes, offset: int = 0, *,
                 base_offset: int = 0) -> Tuple[int, bytes, int]:
    """Parse one frame at ``offset``; returns (type, payload, consumed).

    Error messages locate the failure by its absolute byte offset
    (``offset + base_offset``) and, once the header parsed, by the frame's
    type tag — so a bad CRC in a long multi-frame stream names the exact
    frame, not just "bad CRC".  ``base_offset`` lets incremental callers
    (:func:`read_stream_frame`) report stream positions even though they
    hand in a buffer holding a single frame.
    """
    at = offset + base_offset
    if len(data) - offset < _HEADER.size:
        raise StateFormatError(
            f"truncated frame at byte offset {at}: want "
            f"{_HEADER.size}-byte header, have {len(data) - offset}"
        )
    magic, version, frame_type, length = _HEADER.unpack_from(data, offset)
    if magic != FRAME_MAGIC:
        raise StateFormatError(
            f"bad frame magic {magic:#x} at byte offset {at}"
        )
    if version != FRAME_VERSION:
        raise StateFormatError(
            f"unsupported frame version {version} at byte offset {at}"
        )
    total = _HEADER.size + length + _CRC.size
    if len(data) - offset < total:
        raise StateFormatError(
            f"truncated frame (type {frame_type}) at byte offset {at}: "
            f"want {total} bytes, have {len(data) - offset}"
        )
    body_end = offset + _HEADER.size + length
    payload = bytes(data[offset + _HEADER.size:body_end])
    (stored_crc,) = _CRC.unpack_from(data, body_end)
    computed = zlib.crc32(data[offset:body_end])
    if stored_crc != computed:
        raise StateFormatError(
            f"frame CRC mismatch (type {frame_type}) at byte offset {at}: "
            f"stored {stored_crc:#010x}, computed {computed:#010x}"
        )
    if frame_type == END_FRAME and payload:
        raise StateFormatError(
            f"END frame at byte offset {at} carries a non-empty payload"
        )
    return frame_type, payload, total


def read_stream_frame(stream, offset: int = 0,
                      meter: Optional[StreamMeter] = None
                      ) -> Tuple[int, bytes, int]:
    """Read exactly one frame from a binary file object (blocking).

    Returns ``(type, payload, consumed)``.  The pipe-transport flavour of
    the codec: where :class:`FrameReader` walks an in-memory buffer, this
    reads incrementally — header first, then exactly the body the header
    promises — so two processes can speak frames over a pipe without
    buffering the whole stream.  ``offset`` is the caller's running byte
    position on the channel, reported in every error message.

    EOF cleanly *between* frames raises ``StateFormatError("stream
    closed...")``; EOF mid-frame reports a truncation at the absolute
    offset.  Callers that treat endpoint death as a recoverable event
    (the ``repro.par`` worker pool) catch the error and handle it.
    """
    header = _read_exact(stream, _HEADER.size)
    if not header:
        raise StateFormatError(
            f"stream closed at byte offset {offset}: expected a frame header"
        )
    if len(header) < _HEADER.size:
        raise StateFormatError(
            f"truncated frame at byte offset {offset}: want "
            f"{_HEADER.size}-byte header, have {len(header)}"
        )
    _, _, frame_type, length = _HEADER.unpack(header)
    rest = _read_exact(stream, length + _CRC.size)
    if len(rest) < length + _CRC.size:
        raise StateFormatError(
            f"truncated frame (type {frame_type}) at byte offset {offset}: "
            f"want {_HEADER.size + length + _CRC.size} bytes, have "
            f"{_HEADER.size + len(rest)}"
        )
    frame_type, payload, consumed = decode_frame(header + rest,
                                                 base_offset=offset)
    if meter is not None:
        meter.count_in(consumed)
    return frame_type, payload, consumed


def _read_exact(stream, size: int) -> bytes:
    """Read up to ``size`` bytes, looping over short reads; may return
    fewer only at EOF."""
    parts: List[bytes] = []
    have = 0
    while have < size:
        chunk = stream.read(size - have)
        if not chunk:
            break
        parts.append(chunk)
        have += len(chunk)
    return b"".join(parts)


class FrameWriter:
    """Streaming frame encoder.

    ``frame()`` appends one typed frame; ``finish()`` appends the END
    marker and returns the whole stream.  Open-ended channels (the
    migration wire) use ``getvalue()`` without finishing — completeness
    there is the receiver state machine's job.
    """

    def __init__(self, meter: Optional[StreamMeter] = None):
        self._parts: List[bytes] = []
        self._meter = meter
        self.bytes_written = 0
        self.frames_written = 0
        self._finished = False

    def frame(self, frame_type: int, payload: bytes) -> int:
        """Append one frame; returns its encoded size."""
        if self._finished:
            raise StateFormatError("cannot append to a finished stream")
        if frame_type == END_FRAME:
            raise StateFormatError("END frames are written by finish()")
        encoded = encode_frame(frame_type, payload)
        self._parts.append(encoded)
        self.bytes_written += len(encoded)
        self.frames_written += 1
        if self._meter is not None:
            self._meter.count_out(len(encoded))
        return len(encoded)

    def finish(self) -> bytes:
        """Terminate the stream with an END frame and return its bytes."""
        if self._finished:
            raise StateFormatError("stream already finished")
        encoded = encode_frame(END_FRAME, b"")
        self._parts.append(encoded)
        self.bytes_written += len(encoded)
        if self._meter is not None:
            self._meter.count_out(len(encoded))
        self._finished = True
        return self.getvalue()

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class FrameReader:
    """Streaming frame decoder over an in-memory stream.

    ``read()`` returns the next ``(type, payload)`` pair, or ``None`` once
    the END frame is reached; running out of bytes *before* END is a
    truncation error.  ``expect_end()`` additionally rejects trailing
    bytes after END — concatenated or garbage tails fail loudly.
    """

    def __init__(self, data: bytes, meter: Optional[StreamMeter] = None):
        self._data = data
        self._offset = 0
        self._meter = meter
        self._ended = False

    @property
    def remaining(self) -> int:
        return len(self._data) - self._offset

    def read(self) -> Optional[Tuple[int, bytes]]:
        if self._ended:
            raise StateFormatError("read past END frame")
        if not self.remaining:
            raise StateFormatError("truncated stream: missing END frame")
        frame_type, payload, consumed = decode_frame(self._data, self._offset)
        self._offset += consumed
        if self._meter is not None:
            self._meter.count_in(consumed)
        if frame_type == END_FRAME:
            self._ended = True
            return None
        return frame_type, payload

    def frames(self) -> Iterator[Tuple[int, bytes]]:
        """Iterate frames until the END marker."""
        while True:
            result = self.read()
            if result is None:
                return
            yield result

    def expect_end(self) -> None:
        """Require that END was reached and nothing trails it."""
        if not self._ended:
            raise StateFormatError("stream not terminated by an END frame")
        if self.remaining:
            raise StateFormatError(
                f"{self.remaining} trailing bytes after END frame"
            )
