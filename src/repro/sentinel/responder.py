"""The sentinel: an event-driven response plane over the fleet layer.

This is the paper's operational loop (§1) running continuously instead of
once: disclosures stream in from the feed, the inventory tracks what every
host runs, the policy gates and scores responses, and the responder
launches :class:`~repro.fleet.controller.FleetController` campaigns to
move exposed hosts — then back again when the patch-release timer closes
each flaw.

Structure: the sentinel owns one discrete-event engine (the *control*
plane).  Each launched campaign runs eagerly on its own engine (the
fleet's *data* plane is a seeded deterministic simulation, so its whole
trajectory is known the instant it launches) and is then replayed onto
the control-plane clock as per-host *commit* events.  The split is what
makes mid-campaign preemption expressible: when a new critical CVE lands
on an in-flight campaign's **target** hypervisor, the sentinel cancels
the not-yet-committed events — those hosts never moved — and re-queues
the source kind for fresh advice, exactly the target re-validation the
paper's repertoire argument requires.

Overlap semantics, in order of precedence:

1. a disclosure on an in-flight campaign's *target* preempts it;
2. a disclosure on a kind already being responded to (queued or in
   flight) coalesces into that response — the re-validation at launch
   scans *all* open CVEs, so nothing is lost;
3. otherwise the disclosure queues a new response, admitted FIFO under
   ``max_concurrent_campaigns``.
"""

import os
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import SentinelError
from repro.obs import NULL_TRACER, MetricsRegistry
from repro.sentinel.feedstream import (
    DAY_S,
    DisclosureEvent,
    FeedSchedule,
    build_feed,
    feed_statistics,
)
from repro.sentinel.inventory import FleetInventory
from repro.sentinel.policy import PolicyConfig, ResponsePolicy
from repro.sim.clock import SimClock
from repro.sim.engine import Engine, Event
from repro.vulndb.data import VulnerabilityDatabase, load_default_database


@dataclass(frozen=True)
class SentinelConfig:
    """The whole response-plane setup: fleet shape, feed, policy."""

    hosts: int = 20
    vms_per_host: int = 10
    inplace_fraction: float = 0.8
    group_size: int = 2
    concurrency: Optional[int] = 8
    mechanism: str = "hybrid"
    seed: int = 42
    current_hypervisor: str = "xen"
    pool: Tuple[str, ...] = ("xen", "kvm")
    feed: FeedSchedule = FeedSchedule()
    policy: PolicyConfig = PolicyConfig()

    def __post_init__(self):
        if self.hosts < 1:
            raise SentinelError(f"need >= 1 host, got {self.hosts}")
        if self.vms_per_host < 1:
            raise SentinelError(
                f"need >= 1 VM per host, got {self.vms_per_host}"
            )
        if not self.pool:
            raise SentinelError("hypervisor pool cannot be empty")
        if self.current_hypervisor not in self.pool:
            raise SentinelError(
                f"current hypervisor {self.current_hypervisor!r} is not in "
                f"the pool {self.pool}"
            )
        if self.policy.preferred_hypervisor is not None \
                and self.policy.preferred_hypervisor not in self.pool:
            raise SentinelError(
                f"preferred hypervisor "
                f"{self.policy.preferred_hypervisor!r} is not in the pool"
            )

    # -- plain-data transport (the par payload contract) -------------------

    def to_payload(self) -> Dict[str, Any]:
        """A plain-dict rendering safe to ship over the worker pipe."""
        payload = asdict(self)
        payload["pool"] = list(self.pool)
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "SentinelConfig":
        data = dict(payload)
        data["pool"] = tuple(data.get("pool", ("xen", "kvm")))
        if isinstance(data.get("feed"), dict):
            data["feed"] = FeedSchedule(**data["feed"])
        if isinstance(data.get("policy"), dict):
            data["policy"] = PolicyConfig(**data["policy"])
        return cls(**data)


@dataclass
class CVEState:
    """Lifecycle of one disclosed flaw, as the sentinel saw it."""

    cve_id: str
    disclosed_at_s: float
    severity: str
    affected: List[str]
    exposed_at_disclosure: int
    #: "not-exposed" | "transplant" | "patch"; None while still open
    remediation: Optional[str] = None
    remediated_at_s: Optional[float] = None
    closed_at_s: Optional[float] = None
    #: indices of campaigns this flaw triggered
    campaigns: List[int] = field(default_factory=list)
    residual: bool = False

    @property
    def window_s(self) -> Optional[float]:
        if self.remediated_at_s is None:
            return None
        return self.remediated_at_s - self.disclosed_at_s


@dataclass
class CampaignRecord:
    """One launched fleet campaign, as the report serializes it."""

    index: int
    kind: str  # "response" | "return"
    trigger_cve: Optional[str]
    source: str
    target: str
    requested_at_s: float
    launched_at_s: Optional[float] = None
    completed_at_s: Optional[float] = None
    hosts: int = 0
    hosts_remediated: int = 0
    hosts_rolled_back: int = 0
    escape_fraction: Optional[float] = None
    preempted_at_s: Optional[float] = None
    preempted_by: Optional[str] = None


@dataclass
class _Request:
    """A queued decision to move hosts off a hypervisor kind."""

    source_kind: str
    trigger_cve: Optional[str]  # None = return transplant
    forced_target: Optional[str]
    created_at_s: float


class _Active:
    """Slot-holding campaign state: reserved, launched, or draining."""

    def __init__(self, request: _Request, record: CampaignRecord):
        self.request = request
        self.record = record
        self.target: Optional[str] = None
        self.commit_events: Dict[str, Event] = {}
        self.completion_event: Optional[Event] = None
        self.preempted = False


class Sentinel:
    """Replays a disclosure feed against a simulated fleet, responding."""

    def __init__(self, config: Optional[SentinelConfig] = None,
                 db: Optional[VulnerabilityDatabase] = None,
                 tracer=NULL_TRACER,
                 registry: Optional[MetricsRegistry] = None,
                 journal_dir: Optional[str] = None):
        self.config = config if config is not None else SentinelConfig()
        self.db = db if db is not None else load_default_database()
        self.tracer = tracer
        self.registry = registry
        self.journal_dir = journal_dir
        self.policy = ResponsePolicy(self.config.policy, self.db,
                                     self.config.pool)
        self.inventory = FleetInventory({
            f"host{i:04d}": self.config.current_hypervisor
            for i in range(self.config.hosts)
        })
        self.states: Dict[str, CVEState] = {}
        self.campaigns: List[CampaignRecord] = []
        self.counters: Dict[str, int] = {
            "disclosures": 0,
            "duplicates_ignored": 0,
            "gate_passed": 0,
            "gate_skipped": 0,
            "campaigns_launched": 0,
            "returns_launched": 0,
            "preemptions": 0,
            "residual_unresolved": 0,
            "capacity_blocked": 0,
            "requests_dropped": 0,
        }
        self._engine: Optional[Engine] = None
        self._queue: List[_Request] = []
        self._active: List[_Active] = []
        self._events: List[DisclosureEvent] = []
        self._home = (self.config.policy.preferred_hypervisor
                      or self.config.current_hypervisor)

    # ------------------------------------------------------------------
    # the run loop

    def run(self):
        """Replay the feed to quiescence; returns a SentinelReport."""
        from repro.sentinel.report import build_report

        self._events = build_feed(self.db, self.config.feed)
        engine = Engine(SimClock(self.config.feed.start_s))
        self._engine = engine
        self.tracer.bind_clock(lambda: engine.now)
        for event in self._events:
            engine.call_at(event.time_s,
                           self._disclosure_handler(event))
        engine.run()

        open_left = self.inventory.open_cves()
        if open_left:
            raise SentinelError(
                f"feed drained with flaws still open: {open_left}"
            )
        report = build_report(
            config=self.config,
            feed_stats=feed_statistics(self._events, self.db),
            states=[self.states[c] for c in sorted(self.states)],
            campaigns=list(self.campaigns),
            inventory=self.inventory,
            counters=dict(self.counters),
            db=self.db,
            completed_at_s=engine.now,
            registry=self.registry,
        )
        if self.tracer.enabled:
            from repro.obs import trace_sentinel

            self.tracer.extend(trace_sentinel(
                [s for c, s in sorted(self.states.items())],
                self.campaigns,
                end_s=engine.now,
            ))
        return report

    # ------------------------------------------------------------------
    # disclosure handling

    def _disclosure_handler(self, event: DisclosureEvent):
        def fire() -> None:
            self._on_disclosure(event)
        return fire

    def _on_disclosure(self, event: DisclosureEvent) -> None:
        now = self._engine.now
        self.counters["disclosures"] += 1
        if event.duplicate or event.cve_id in self.states:
            # A re-announcement of a flaw already being handled.
            self.counters["duplicates_ignored"] += 1
            return
        record = self.db.get(event.cve_id)
        self.inventory.open_cve(now, record)
        state = CVEState(
            cve_id=event.cve_id,
            disclosed_at_s=now,
            severity=record.severity.value,
            affected=sorted(record.affected),
            exposed_at_disclosure=self.inventory.exposure_count(
                event.cve_id),
        )
        self.states[event.cve_id] = state
        # The ordinary patch cycle runs regardless of any transplant: when
        # it fires the flaw is closed fleet-wide and returns can happen.
        self._engine.call_at(
            self.policy.patch_closes_at(record, now),
            self._patch_close_handler(event.cve_id),
        )
        # Precedence 1: a critical hit on an in-flight campaign's target
        # invalidates its advice — preempt before anything else, even the
        # not-exposed shortcut: hosts may be *en route* to the flawed kind
        # with no commit landed yet, and those moves must be cancelled.
        for active in list(self._active):
            if active.target is not None and not active.preempted \
                    and self.policy.should_respond(record, active.target):
                self._preempt(active, record.cve_id)

        if self.inventory.exposure_count(event.cve_id) == 0:
            # Nobody runs an affected hypervisor (any more — a preemption
            # above may just have cancelled the moves that would have
            # created exposure), so the window closes at disclosure.
            state.remediation = "not-exposed"
            state.remediated_at_s = now
            self._pump()  # preempted kinds re-queued above need the slot
            return

        # Precedence 2/3: gate per hypervisor kind actually in the fleet.
        for kind in sorted(self.inventory.kinds()):
            if not self.policy.should_respond(record, kind):
                self.counters["gate_skipped"] += 1
                continue
            self.counters["gate_passed"] += 1
            self._enqueue(_Request(
                source_kind=kind, trigger_cve=record.cve_id,
                forced_target=None, created_at_s=now,
            ))
        self._pump()

    # ------------------------------------------------------------------
    # patch-cycle closure and return transplants

    def _patch_close_handler(self, cve_id: str):
        def fire() -> None:
            self._on_patch_close(cve_id)
        return fire

    def _on_patch_close(self, cve_id: str) -> None:
        now = self._engine.now
        state = self.states[cve_id]
        self.inventory.close_cve(now, cve_id)
        state.closed_at_s = now
        if state.remediated_at_s is None:
            # The transplant never covered the whole fleet (residual or
            # rolled-back hosts): the patch cycle ends the exposure.
            state.remediation = "patch"
            state.remediated_at_s = now
        # Safety only improves when flaws close, so patch closure is the
        # moment blocked moves can become possible: returns home first,
        # then a fresh gate pass for any kind still exposed to an open
        # flaw (a residual case may have just gained a safe target).
        open_cves = self.inventory.open_cves()
        for kind in sorted(self.inventory.kinds()):
            if self.config.policy.return_transplant and kind != self._home:
                self._enqueue(_Request(
                    source_kind=kind, trigger_cve=None,
                    forced_target=self._home, created_at_s=now,
                ))
            trigger = self._current_trigger(kind)
            if trigger is not None and \
                    self.policy.choose_target(kind, open_cves) is not None:
                # Only re-gate when a safe target actually exists now —
                # a still-pinned residual case would just churn.
                self._enqueue(_Request(
                    source_kind=kind, trigger_cve=trigger,
                    forced_target=None, created_at_s=now,
                ))
        self._pump()

    # ------------------------------------------------------------------
    # queueing and admission

    def _kind_engaged(self, kind: str) -> bool:
        if any(r.source_kind == kind for r in self._queue):
            return True
        return any(a.request.source_kind == kind and not a.preempted
                   for a in self._active)

    def _enqueue(self, request: _Request) -> None:
        if self._kind_engaged(request.source_kind):
            return  # coalesce: launch-time validation scans all open CVEs
        self._queue.append(request)

    def _pump(self) -> None:
        while self._queue and \
                len(self._active) < self.config.policy.max_concurrent_campaigns:
            request = self._queue.pop(0)
            if not self._admit(request):
                continue

    def _admit(self, request: _Request) -> bool:
        """Reserve a campaign slot and schedule the launch, or drop."""
        now = self._engine.now
        if not self.inventory.kinds().get(request.source_kind):
            self.counters["requests_dropped"] += 1
            return False
        free_slots = 22 - self.config.vms_per_host  # ClusterNode capacity
        if free_slots < self.config.policy.min_free_slots:
            # The fleet is packed too tight to evacuate anything; these
            # hosts ride the patch cycle (the paper's InPlaceTP argument
            # is exactly that this constraint bites real clouds).
            self.counters["capacity_blocked"] += 1
            return False
        record = CampaignRecord(
            index=len(self.campaigns),
            kind="return" if request.trigger_cve is None else "response",
            trigger_cve=request.trigger_cve,
            source=request.source_kind,
            target="",  # chosen at launch
            requested_at_s=request.created_at_s,
        )
        self.campaigns.append(record)
        active = _Active(request, record)
        self._active.append(active)
        self._engine.call_at(self.policy.launch_at(now),
                             self._launch_handler(active))
        return True

    # ------------------------------------------------------------------
    # launch: validate, choose, run the data plane, replay commits

    def _launch_handler(self, active: _Active):
        def fire() -> None:
            self._launch(active)
        return fire

    def _release(self, active: _Active) -> None:
        self._active.remove(active)

    def _launch(self, active: _Active) -> None:
        now = self._engine.now
        request = active.request
        hosts = self.inventory.kinds().get(request.source_kind, [])
        if not hosts:
            self.counters["requests_dropped"] += 1
            self._abandon(active)
            return

        open_cves = self.inventory.open_cves()
        if request.forced_target is not None:
            # A return transplant: only safe if home is currently clean.
            target = request.forced_target
            if target == request.source_kind or \
                    not self.policy.is_safe(target, open_cves):
                # Home is unsafe (or we are home): if these hosts are
                # still exposed to an open flaw and some other target is
                # safe, fall back to an emergency response instead of
                # just giving up the slot.
                trigger = self._current_trigger(request.source_kind)
                self._abandon(active)
                if trigger is not None and self.policy.choose_target(
                        request.source_kind, open_cves) is not None:
                    self._enqueue(_Request(
                        source_kind=request.source_kind,
                        trigger_cve=trigger, forced_target=None,
                        created_at_s=now,
                    ))
                    self._pump()
                else:
                    self.counters["requests_dropped"] += 1
                return
            escape = None
        else:
            # Launch-time re-validation: the decision that queued this
            # request may be stale — re-gate and re-score against the
            # open-CVE set as of *now*.
            trigger = self._current_trigger(request.source_kind)
            if trigger is None:
                self.counters["requests_dropped"] += 1
                self._abandon(active)
                return
            active.record.trigger_cve = trigger
            choice = self.policy.choose_target(request.source_kind,
                                               open_cves)
            if choice is None:
                # Residual risk: a common flaw pins the whole repertoire.
                self.counters["residual_unresolved"] += 1
                self.states[trigger].residual = True
                self._abandon(active)
                return
            target = choice.target
            escape = choice.escape_fraction

        metrics, mapping = self._run_data_plane(active, hosts, target)
        record = active.record
        record.target = target
        record.launched_at_s = now
        record.hosts = len(hosts)
        record.escape_fraction = escape
        record.hosts_rolled_back = metrics.rolled_back_hosts
        active.target = target
        if record.kind == "return":
            self.counters["returns_launched"] += 1
        else:
            self.counters["campaigns_launched"] += 1
            self.states[record.trigger_cve].campaigns.append(record.index)

        # Replay the campaign trajectory onto the control-plane clock:
        # one cancellable commit per remediated host, then completion.
        duration = metrics.completed_at_s - metrics.disclosure_at_s
        for outcome, host in mapping:
            if outcome.window_s is None:
                continue  # rolled back: the host never leaves the source
            active.commit_events[host] = self._engine.call_at(
                now + outcome.window_s,
                self._commit_handler(active, host, target),
            )
        active.completion_event = self._engine.call_at(
            now + duration, self._complete_handler(active),
        )

    def _current_trigger(self, kind: str) -> Optional[str]:
        """The (sorted-first) open CVE still warranting a response."""
        for cve_id in self.inventory.open_cves():
            record = self.db.get(cve_id)
            if self.policy.should_respond(record, kind):
                return cve_id
        return None

    def _abandon(self, active: _Active) -> None:
        """Drop a reserved campaign without launching it.  Launched
        campaigns are never removed, so surviving indices stay unique."""
        self.campaigns.remove(active.record)
        self._release(active)
        self._pump()

    def _run_data_plane(self, active: _Active, hosts: List[str],
                        target: str):
        """Run one FleetController campaign eagerly; map its node names
        (``node00``...) back onto the sentinel's host names."""
        from repro.fleet.controller import FleetConfig, FleetController

        config = self.config
        sub_seed = self._campaign_seed(active.record.index)
        group_size = min(config.group_size, len(hosts))
        inplace_fraction = config.inplace_fraction
        if group_size >= len(hosts):
            # One group takes the whole subset down at once (tiny subsets
            # left behind by preemptions): no live node remains to receive
            # evacuated VMs, so every host must transplant in place.
            inplace_fraction = 1.0
        fleet_config = FleetConfig(
            hosts=len(hosts),
            vms_per_host=config.vms_per_host,
            inplace_fraction=inplace_fraction,
            group_size=group_size,
            seed=sub_seed,
            concurrency=config.concurrency,
            mechanism=config.mechanism,
            trigger_cve=(active.record.trigger_cve
                         or f"return-{active.record.index}"),
            current_hypervisor=active.request.source_kind,
            pool=config.pool,
            target_override=target,
        )
        journal = None
        if self.journal_dir is not None:
            from repro.fleet.failures import FailureInjector, RetryPolicy
            from repro.journal import CampaignJournal, campaign_meta

            path = os.path.join(
                self.journal_dir,
                f"campaign-{active.record.index:03d}.journal",
            )
            journal = CampaignJournal.create(path, campaign_meta(
                fleet_config, FailureInjector(0.0, seed=sub_seed),
                RetryPolicy(),
            ))
        controller = FleetController(fleet_config, db=self.db,
                                     journal=journal)
        metrics = controller.run()
        outcomes = sorted(metrics.per_host, key=lambda h: h.name)
        return metrics, list(zip(outcomes, sorted(hosts)))

    def _campaign_seed(self, index: int) -> int:
        from repro.par.shard import derive_seed

        return derive_seed(self.config.seed, "sentinel-campaign", index)

    # ------------------------------------------------------------------
    # control-plane replay events

    def _commit_handler(self, active: _Active, host: str, target: str):
        def fire() -> None:
            self._commit(active, host, target)
        return fire

    def _commit(self, active: _Active, host: str, target: str) -> None:
        now = self._engine.now
        self.inventory.commit_host(now, host, target)
        active.commit_events.pop(host, None)
        active.record.hosts_remediated += 1
        self._check_remediated(now)

    def _complete_handler(self, active: _Active):
        def fire() -> None:
            active.record.completed_at_s = self._engine.now
            self._release(active)
            self._pump()
        return fire

    def _check_remediated(self, now: float) -> None:
        """A commit changed the fleet: did any open flaw lose its last
        exposed host?  (Commits can also *raise* another flaw's exposure —
        the accrual integral in the inventory accounts for that.)"""
        for cve_id in self.inventory.open_cves():
            state = self.states[cve_id]
            if state.remediated_at_s is None \
                    and self.inventory.exposure_count(cve_id) == 0:
                state.remediation = "transplant"
                state.remediated_at_s = now

    # ------------------------------------------------------------------
    # preemption

    def _preempt(self, active: _Active, by_cve: str) -> None:
        """A critical flaw landed on this campaign's target: hosts not yet
        committed stay on the source hypervisor, the slot frees, and the
        source kind re-queues for fresh advice."""
        now = self._engine.now
        self.counters["preemptions"] += 1
        active.preempted = True
        for host in sorted(active.commit_events):
            active.commit_events.pop(host).cancel()
        if active.completion_event is not None:
            active.completion_event.cancel()
        record = active.record
        record.preempted_at_s = now
        record.preempted_by = by_cve
        self._release(active)
        self._enqueue(_Request(
            source_kind=active.request.source_kind,
            trigger_cve=record.trigger_cve,
            forced_target=None,
            created_at_s=now,
        ))
        # The pump runs from the disclosure handler after all preemptions
        # and gate checks, so admission sees the final queue.
