"""Fig. 14 — memory overhead: PRAM structures and UISR formats.

Both series are *measured* from the real data structures.  Paper anchors:
PRAM 16 KB (one 1 GB VM) -> 60 KB (12 GB VM), 148 KB for 12x1 GB VMs; UISR
5 KB (1 vCPU) -> 38 KB (10 vCPUs); total 21-98 KB per VM, returned after
the transplant.
"""

from repro.bench.report import format_table, print_experiment
from repro.core.pram import PRAMFilesystem
from repro.core.uisr.codec import uisr_size
from repro.guest.image import GuestImage
from repro.hw.memory import PAGE_2M, PhysicalMemory

GIB = 1024 ** 3


def pram_size_for_memory(guest_gib):
    memory = PhysicalMemory(16 * GIB)
    image = GuestImage(memory, guest_gib * GIB, page_size=PAGE_2M)
    fs = PRAMFilesystem(memory)
    fs.add_vm_file("vm0", image.mappings(), page_size=PAGE_2M)
    return fs.metadata_bytes()


def pram_size_for_vms(vm_count):
    memory = PhysicalMemory(16 * GIB)
    fs = PRAMFilesystem(memory)
    for i in range(vm_count):
        image = GuestImage(memory, GIB, page_size=PAGE_2M)
        fs.add_vm_file(f"vm{i}", image.mappings(), page_size=PAGE_2M)
    return fs.metadata_bytes()


def uisr_size_for_vcpus(vcpus):
    from repro.core.uisr import (
        UISRMemoryMap,
        UISRPlatform,
        UISRVCpu,
        UISRVMState,
    )
    from repro.core.uisr.format import UISR_VERSION
    from repro.guest.devices import make_default_platform
    from repro.guest.vcpu import make_boot_vcpu

    state = UISRVMState(
        version=UISR_VERSION,
        vm_name="vm0",
        vcpu_count=vcpus,
        memory_bytes=GIB,
        source_hypervisor="xen",
        vcpus=[UISRVCpu(make_boot_vcpu(i)) for i in range(vcpus)],
        platform=UISRPlatform(make_default_platform(vcpus)),
        memory_map=UISRMemoryMap(page_size=PAGE_2M, total_bytes=GIB,
                                 pram_file="vm0"),
    )
    return uisr_size(state)


def run():
    rows = []
    for gib in (1, 2, 4, 6, 8, 10, 12):
        rows.append(["PRAM vs memory", f"{gib} GiB",
                     pram_size_for_memory(gib) / 1024,
                     {1: 16, 12: 60}.get(gib, "-")])
    for count in (2, 4, 6, 8, 10, 12):
        rows.append(["PRAM vs #VMs", f"{count} VMs",
                     pram_size_for_vms(count) / 1024,
                     {12: 148}.get(count, "-")])
    for vcpus in (1, 2, 4, 6, 8, 10):
        rows.append(["UISR vs vCPUs", f"{vcpus} vCPU",
                     uisr_size_for_vcpus(vcpus) / 1024,
                     {1: 5, 10: 38}.get(vcpus, "-")])
    return rows


HEADERS = ["series", "x", "measured (KiB)", "paper (KB)"]


def test_fig14_memory_overhead(benchmark):
    rows = benchmark(run)
    print_experiment("Fig. 14", "PRAM + UISR memory overhead (measured)",
                     format_table(HEADERS, rows))


if __name__ == "__main__":
    print_experiment("Fig. 14", "PRAM + UISR memory overhead (measured)",
                     format_table(HEADERS, run()))
