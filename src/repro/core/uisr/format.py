"""UISR dataclasses.

The paper uses "a slight modification of Xen's virtual resource state
representation" as UISR (§4.2), chosen because Xen's format is mature.  Our
UISR therefore carries the same architectural content as the Xen HVM context
— vCPU register files, LAPICs, an IOAPIC of *any* pin count, PIT, MTRR,
XSAVE — plus the pieces the Xen context does not include but a transplant
needs: the VM's identity/sizing, its memory map (by reference to a PRAM file
or as an explicit chunk list), and emulated-device states.
"""

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import UISRError
from repro.guest.devices import PlatformState
from repro.guest.vcpu import VCPUState

UISR_VERSION = 1


@dataclass
class UISRVCpu:
    """Neutral per-vCPU record (architectural registers only)."""

    vcpu: VCPUState

    def view(self) -> Tuple:
        return self.vcpu.architectural_view()


@dataclass
class UISRPlatform:
    """Neutral platform-device record set."""

    platform: PlatformState

    def view(self) -> Tuple:
        return self.platform.architectural_view()


@dataclass(frozen=True)
class UISRMemoryChunk:
    """One contiguous guest-memory chunk: GFN -> MFN, 2^order base pages."""

    gfn: int
    mfn: int
    order: int  # chunk covers 2**order 4K base pages

    def __post_init__(self) -> None:
        if self.gfn < 0 or self.mfn < 0 or self.order < 0:
            raise UISRError(f"invalid memory chunk {self}")


@dataclass
class UISRMemoryMap:
    """The VM's memory layout.

    For InPlaceTP the map is *by reference*: ``pram_file`` names the PRAM
    file whose page entries hold the layout (guest pages stay in place).
    For MigrationTP the map is *by value*: ``chunks`` lists every chunk so
    the destination can rebuild the layout as pages arrive.
    """

    page_size: int
    total_bytes: int
    pram_file: Optional[str] = None
    chunks: List[UISRMemoryChunk] = field(default_factory=list)

    def __post_init__(self) -> None:
        if (self.pram_file is None) == (not self.chunks):
            # exactly one of the two representations must be present
            raise UISRError(
                "memory map must carry either a PRAM reference or chunks"
            )

    @property
    def by_reference(self) -> bool:
        return self.pram_file is not None


@dataclass
class UISRDeviceState:
    """One emulated device's translated state."""

    name: str
    device_class: str  # e.g. "net", "block", "serial"
    strategy: str  # "translate" or "unplug-rescan" or "passthrough-pause"
    payload: bytes = b""


@dataclass
class UISRVMState:
    """Top-level UISR document for one VM (the unit HyperTP moves)."""

    version: int
    vm_name: str
    vcpu_count: int
    memory_bytes: int
    source_hypervisor: str
    vcpus: List[UISRVCpu]
    platform: UISRPlatform
    memory_map: UISRMemoryMap
    devices: List[UISRDeviceState] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.version != UISR_VERSION:
            raise UISRError(f"unsupported UISR version {self.version}")
        if len(self.vcpus) != self.vcpu_count:
            raise UISRError(
                f"UISR for {self.vm_name}: {len(self.vcpus)} vCPU records "
                f"for vcpu_count={self.vcpu_count}"
            )
        if len(self.platform.platform.lapics) != self.vcpu_count:
            raise UISRError(
                f"UISR for {self.vm_name}: LAPIC count mismatch"
            )

    def architectural_view(self) -> Tuple:
        """Canonical projection for cross-format equality checks."""
        return (
            self.vm_name,
            self.vcpu_count,
            self.memory_bytes,
            tuple(v.view() for v in self.vcpus),
            self.platform.view(),
        )
