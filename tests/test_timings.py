"""Tests for the calibrated cost model."""

import pytest

from repro.hw.machine import M1_SPEC, M2_SPEC, Machine
from repro.hw.memory import PAGE_2M
from repro.hypervisors.base import HypervisorKind
from repro.core.timings import DEFAULT_COST_MODEL, CostModel

GIB = 1024 ** 3
cost = DEFAULT_COST_MODEL


class TestEntries:
    def test_huge_pages_512_per_gib(self):
        assert cost.entries_for(GIB, PAGE_2M, huge_pages=True) == 512

    def test_4k_fallback(self):
        assert cost.entries_for(GIB, PAGE_2M, huge_pages=False) == 262144

    def test_rounding_up(self):
        assert cost.entries_for(PAGE_2M + 1, PAGE_2M, huge_pages=True) == 2


class TestBootModel:
    def test_xen_boots_slower_than_kvm(self):
        m1 = Machine(M1_SPEC)
        assert (cost.kernel_boot_s(m1, HypervisorKind.XEN)
                > 3 * cost.kernel_boot_s(m1, HypervisorKind.KVM))

    def test_m2_boots_slower_than_m1(self):
        m1, m2 = Machine(M1_SPEC), Machine(M2_SPEC)
        for kind in (HypervisorKind.XEN, HypervisorKind.KVM):
            assert cost.kernel_boot_s(m2, kind) > cost.kernel_boot_s(m1, kind)

    def test_reboot_includes_sequential_pram_parse(self):
        m1 = Machine(M1_SPEC)
        empty = cost.reboot_phase_s(m1, HypervisorKind.KVM, 0)
        loaded = cost.reboot_phase_s(m1, HypervisorKind.KVM, 6144)
        assert loaded > empty
        assert loaded - empty == pytest.approx(6144 * cost.pram_parse_per_entry_s,
                                               rel=0.01)


class TestPhaseModels:
    def test_pram_parallel_beats_serial(self):
        m1 = Machine(M1_SPEC)
        entries = [512] * 8
        assert (cost.pram_phase_s(m1, entries, parallel=True)
                < cost.pram_phase_s(m1, entries, parallel=False))

    def test_translate_scales_with_host_ram(self):
        m1, m2 = Machine(M1_SPEC), Machine(M2_SPEC)
        shape = [(1, 512)]
        # M2 is slower per-thread AND scans 4x the RAM.
        assert (cost.translate_phase_s(m2, shape)
                > cost.translate_phase_s(m1, shape))

    def test_restore_early_restoration_saves_time(self):
        m1 = Machine(M1_SPEC)
        shape = [(1, 512)]
        fast = cost.restore_phase_s(m1, shape, early_restoration=True)
        slow = cost.restore_phase_s(m1, shape, early_restoration=False)
        assert slow - fast == pytest.approx(cost.early_restore_saving_s)

    def test_stopcopy_kvmtool_cheaper_than_xen(self):
        kvm = cost.stopcopy_overhead_s(HypervisorKind.KVM, 1)
        xen = cost.stopcopy_overhead_s(HypervisorKind.XEN, 1)
        assert xen > 20 * kvm

    def test_stopcopy_grows_with_vcpus(self):
        assert (cost.stopcopy_overhead_s(HypervisorKind.XEN, 10)
                > cost.stopcopy_overhead_s(HypervisorKind.XEN, 1))


class TestCustomModel:
    def test_frozen_dataclass(self):
        with pytest.raises(Exception):
            cost.kexec_jump_s = 1.0

    def test_custom_values_flow_through(self):
        slow_boot = CostModel(kvm_kernel_boot_s=10.0)
        m1 = Machine(M1_SPEC)
        assert slow_boot.kernel_boot_s(m1, HypervisorKind.KVM) > 10.0
