"""NVD-style JSON feed import/export.

Operators track vulnerabilities through feeds (the paper mined the NIST NVD
website).  This module round-trips the database through a compact JSON
document so a deployment can load a real curated feed instead of the
embedded dataset, and so the embedded dataset can be audited as data.
"""

import json
from typing import Dict, Union

from repro.errors import VulnDBError
from repro.vulndb.cve import CVERecord
from repro.vulndb.data import VulnerabilityDatabase

FEED_FORMAT = "hypertp-vulnfeed"
FEED_VERSION = 1


def record_to_dict(record: CVERecord) -> Dict:
    """One CVE as a JSON-ready dict."""
    entry = {
        "id": record.cve_id,
        "year": record.year,
        "affected": sorted(record.affected),
        "component": record.component,
        "description": record.description,
    }
    if record.cvss_vector is not None:
        entry["cvss_vector"] = record.cvss_vector
    if record.cvss_score is not None:
        entry["cvss_score"] = record.cvss_score
    if record.days_to_patch is not None:
        entry["days_to_patch"] = record.days_to_patch
    return entry


def record_from_dict(entry: Dict) -> CVERecord:
    """Parse one feed entry, validating required fields."""
    try:
        return CVERecord(
            cve_id=entry["id"],
            year=int(entry["year"]),
            affected=frozenset(entry["affected"]),
            component=entry["component"],
            cvss_vector=entry.get("cvss_vector"),
            cvss_score=entry.get("cvss_score"),
            description=entry.get("description", ""),
            days_to_patch=entry.get("days_to_patch"),
        )
    except KeyError as exc:
        raise VulnDBError(f"feed entry missing field {exc}") from exc
    except (TypeError, ValueError) as exc:
        raise VulnDBError(f"malformed feed entry: {exc}") from exc


def export_feed(db: VulnerabilityDatabase) -> str:
    """Serialize a database to the JSON feed format."""
    document = {
        "format": FEED_FORMAT,
        "version": FEED_VERSION,
        "entries": [record_to_dict(r) for r in db.all()],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def import_feed(text: Union[str, bytes]) -> VulnerabilityDatabase:
    """Parse a JSON feed into a database, validating the envelope."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise VulnDBError(f"feed is not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise VulnDBError("feed must be a JSON object")
    if document.get("format") != FEED_FORMAT:
        raise VulnDBError(
            f"unknown feed format {document.get('format')!r}"
        )
    if document.get("version") != FEED_VERSION:
        raise VulnDBError(
            f"unsupported feed version {document.get('version')!r}"
        )
    entries = document.get("entries")
    if not isinstance(entries, list):
        raise VulnDBError("feed entries must be a list")
    return VulnerabilityDatabase([record_from_dict(e) for e in entries])


def merge_feeds(*databases: VulnerabilityDatabase) -> VulnerabilityDatabase:
    """Union several databases; later feeds override earlier on id clash.

    The merged record order is sorted by CVE id, so merging the same set
    of feeds in any order produces the same database — and the same
    ``export_feed`` bytes — whenever clashing ids carry equal records.
    (When clashing ids carry *different* records, later-feed-wins is the
    one deliberately order-dependent rule, mirroring how operators layer
    a curated override feed on top of a bulk import.)
    """
    merged: Dict[str, CVERecord] = {}
    for db in databases:
        for record in db.all():
            merged[record.cve_id] = record
    return VulnerabilityDatabase(
        [merged[cve_id] for cve_id in sorted(merged)]
    )
