"""Reconfiguration plans: ordered migration and host-upgrade actions.

A plan is what the BtrPlace-style planner emits and the executor consumes.
Actions carry enough information (VM size, workload, endpoints) for the
executor to time them against the migration cost model.
"""

from dataclasses import dataclass, field
from typing import List

from repro.cluster.model import WorkloadKind


@dataclass(frozen=True)
class MigrationAction:
    """Live-migrate one VM between nodes (MigrationTP in a mixed cluster)."""

    vm_name: str
    source: str
    destination: str
    memory_bytes: int
    workload: WorkloadKind


@dataclass(frozen=True)
class InPlaceAction:
    """Micro-reboot one host into the target hypervisor with its VMs."""

    node_name: str
    vm_count: int
    total_memory_bytes: int


@dataclass
class GroupPlan:
    """Actions for one offline group (executed as a unit)."""

    group_index: int
    nodes: List[str]
    migrations: List[MigrationAction] = field(default_factory=list)
    upgrades: List[InPlaceAction] = field(default_factory=list)


@dataclass
class ReconfigurationPlan:
    """The whole campaign: one GroupPlan per offline round."""

    groups: List[GroupPlan] = field(default_factory=list)

    @property
    def migration_count(self) -> int:
        return sum(len(g.migrations) for g in self.groups)

    @property
    def upgrade_count(self) -> int:
        return sum(len(g.upgrades) for g in self.groups)

    def migrations(self) -> List[MigrationAction]:
        return [m for g in self.groups for m in g.migrations]
