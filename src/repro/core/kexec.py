"""Simulated kexec micro-reboot (§4.2.4).

Kexec boots a new kernel on top of a running system without firmware
re-initialization.  For InPlaceTP the sequence is:

1. the target hypervisor image is loaded into RAM ahead of time;
2. at transplant time the machine jumps into it, passing the PRAM pointer on
   the boot command line;
3. the target's early boot parses the PRAM structure and *reserves* every
   frame it names before the allocator comes up, so guest memory survives;
4. everything else (old HV State) is reinitialized.

The model enforces the survival invariant on the real allocator: after
``micro_reboot`` only pinned (PRAM-registered) frames remain allocated and
their digests are untouched.
"""

from dataclasses import dataclass
from typing import Optional

from repro.errors import KexecError
from repro.hw.machine import Machine
from repro.hypervisors.base import Hypervisor, HypervisorKind


@dataclass
class KexecImage:
    """A staged kernel image for the target hypervisor."""

    kind: HypervisorKind
    cmdline_pram_pointer: Optional[int] = None

    @property
    def cmdline(self) -> str:
        base = f"console=ttyS0 {self.kind.value}-transplant=1"
        if self.cmdline_pram_pointer is not None:
            return f"{base} pram={self.cmdline_pram_pointer:#x}"
        return base


def load_kexec_image(machine: Machine, kind: HypervisorKind) -> KexecImage:
    """Step 1 of InPlaceTP (Fig. 3 ❶): stage the target kernel in RAM."""
    image = KexecImage(kind=kind)
    machine.stage_kernel(image)
    return image


def micro_reboot(machine: Machine, target: Hypervisor,
                 pram_pointer: Optional[int]) -> Hypervisor:
    """Execute the staged kexec: tear down the old hypervisor, boot the new.

    Guest frames registered with PRAM (pinned) survive; the rest of RAM is
    handed to the new hypervisor's allocator.  Raises :class:`KexecError` if
    no kernel was staged or the staged kind does not match ``target``.
    """
    image = machine.staged_kernel
    if image is None:
        raise KexecError(f"{machine.name}: no kexec image staged")
    if image.kind is not target.kind:
        raise KexecError(
            f"{machine.name}: staged kernel is {image.kind.value}, "
            f"target is {target.kind.value}"
        )
    image.cmdline_pram_pointer = pram_pointer

    old = machine.hypervisor
    if old is not None:
        # Domains are carried through PRAM/UISR, not through the old
        # hypervisor object; drop its references without releasing VMs.
        for domid in list(old.domains):
            old.detach_domain(domid)
        old.shutdown()

    # The NIC loses link across the reboot; HV State is reinitialized by
    # resetting the allocator around the pinned frames.
    machine.nic.reset()
    machine.memory.reset_except_pinned()
    machine.staged_kernel = None

    target.boot(machine)
    return target
