"""The embedded Xen/KVM vulnerability dataset (2013-2019).

Reconstructed from the paper's §2: per-year critical/medium counts match
Table 1 exactly, component shares match the §2.1 breakdowns, the three real
common CVEs are present by name (the QEMU floppy-controller overflow
CVE-2015-3456 "VENOM", and the two exception-handling DoS flaws
CVE-2015-8104 / CVE-2015-5307), and the KVM timeline sample reproduces the
§2.2 statistics (24 windows, mean 71 days, min 8, max 180, ~60 % above 60).

The remaining records are synthetic stand-ins for the NVD entries the paper
aggregated: we cannot ship NVD's full text, but every *statistic* the paper
derives is preserved.  Substitution documented in DESIGN.md §2.
"""

import itertools
import random
from typing import Dict, List, Optional, Tuple

from repro.errors import VulnDBError
from repro.vulndb.cve import CVERecord, Severity

XEN = "xen"
KVM = "kvm"

# Table 1: year -> (xen_crit, xen_med, kvm_crit, kvm_med, common_crit,
# common_med); the common counts are included in both hypervisors' columns.
TABLE1_COUNTS: Dict[int, Tuple[int, int, int, int, int, int]] = {
    2013: (3, 38, 3, 21, 0, 0),
    2014: (4, 27, 1, 12, 0, 0),
    2015: (11, 20, 1, 4, 1, 2),
    2016: (6, 12, 3, 3, 0, 0),
    2017: (17, 38, 1, 7, 0, 0),
    2018: (7, 21, 2, 5, 0, 0),
    2019: (7, 15, 2, 4, 0, 0),
}

# §2.1 component shares for critical vulnerabilities.
XEN_CRITICAL_COMPONENTS = ("pv", "resource-mgmt", "hardware", "toolstack", "qemu")
XEN_CRITICAL_SHARES = (0.384, 0.282, 0.153, 0.075, 0.102)
KVM_CRITICAL_COMPONENTS = ("ioctl", "hardware", "qemu", "resource-mgmt")
KVM_CRITICAL_SHARES = (0.27, 0.33, 0.31, 0.09)
MEDIUM_COMPONENTS = ("pv", "resource-mgmt", "hardware", "toolstack", "qemu",
                     "ioctl")

# §2.2: the 24 KVM vulnerability windows (days from report to patch).
# Mean 71, min 8 (CVE-2013-0311), max 180 (CVE-2017-12188), 14/24 > 60 days.
KVM_WINDOW_DAYS = (
    180, 170, 150, 140, 120, 110, 100, 95, 90, 85, 80, 75, 70, 65,
    30, 24, 22, 20, 18, 16, 14, 12, 10, 8,
)

# Scores per band: critical >= 7.0, medium in [4.0, 7.0).
_CRITICAL_SCORES = (7.2, 7.5, 7.8, 8.3, 9.0, 9.3, 10.0)
_MEDIUM_SCORES = (4.0, 4.3, 4.6, 4.9, 5.0, 5.5, 5.8, 6.1, 6.5, 6.8)


class _ComponentAssigner:
    """Assigns components to records so that the *global* shares converge to
    the target distribution even though records are created year by year."""

    def __init__(self, components: Tuple[str, ...], shares: Tuple[float, ...]):
        total_share = sum(shares)
        self._components = components
        self._shares = [s / total_share for s in shares]
        self._assigned = {c: 0 for c in components}
        self._total = 0

    def next_component(self) -> str:
        self._total += 1
        deficits = [
            (self._shares[i] * self._total - self._assigned[c], c)
            for i, c in enumerate(self._components)
        ]
        deficits.sort(key=lambda pair: (-pair[0], pair[1]))
        chosen = deficits[0][1]
        self._assigned[chosen] += 1
        return chosen


class VulnerabilityDatabase:
    """In-memory CVE store with the query surface the advisor needs."""

    def __init__(self, records: List[CVERecord]):
        self._records = list(records)
        self._by_id = {r.cve_id: r for r in self._records}
        if len(self._by_id) != len(self._records):
            raise VulnDBError("duplicate CVE ids in dataset")

    def __len__(self) -> int:
        return len(self._records)

    def all(self) -> List[CVERecord]:
        return list(self._records)

    def get(self, cve_id: str) -> CVERecord:
        try:
            return self._by_id[cve_id]
        except KeyError:
            raise VulnDBError(f"unknown CVE {cve_id!r}") from None

    def affecting(self, hypervisor_kind: str,
                  severity: Optional[Severity] = None) -> List[CVERecord]:
        result = [r for r in self._records if r.affects(hypervisor_kind)]
        if severity is not None:
            result = [r for r in result if r.severity is severity]
        return result

    def common(self, severity: Optional[Severity] = None) -> List[CVERecord]:
        result = [r for r in self._records if r.is_common]
        if severity is not None:
            result = [r for r in result if r.severity is severity]
        return result

    def in_year(self, year: int) -> List[CVERecord]:
        return [r for r in self._records if r.year == year]


def _make_records_for_year(year: int, counts, rng: random.Random,
                           serial: itertools.count,
                           xen_assigner: _ComponentAssigner,
                           kvm_assigner: _ComponentAssigner) -> List[CVERecord]:
    xen_crit, xen_med, kvm_crit, kvm_med, common_crit, common_med = counts
    records: List[CVERecord] = []

    def synth_id() -> str:
        return f"CVE-{year}-9{next(serial):04d}"

    def pick_score(critical: bool) -> float:
        pool = _CRITICAL_SCORES if critical else _MEDIUM_SCORES
        return rng.choice(pool)

    # Common records first (they count toward both columns).
    if common_crit:
        # The one real shared critical: QEMU floppy controller overflow.
        records.append(CVERecord(
            cve_id="CVE-2015-3456", year=2015,
            affected=frozenset({XEN, KVM}), component="qemu",
            cvss_score=7.7,
            description="QEMU virtual floppy disk controller lacks bounds "
                        "checking, leading to a buffer overflow (VENOM).",
        ))
    if common_med:
        records.append(CVERecord(
            cve_id="CVE-2015-8104", year=2015,
            affected=frozenset({XEN, KVM}), component="hardware",
            cvss_score=4.9,
            description="DoS via incomplete handling of the Debug "
                        "Exception (#DB).",
        ))
        records.append(CVERecord(
            cve_id="CVE-2015-5307", year=2015,
            affected=frozenset({XEN, KVM}), component="hardware",
            cvss_score=4.9,
            description="DoS via incomplete handling of the Alignment "
                        "Check exception (#AC).",
        ))

    for _ in range(xen_crit - common_crit):
        comp = xen_assigner.next_component()
        records.append(CVERecord(
            cve_id=synth_id(), year=year, affected=frozenset({XEN}),
            component=comp, cvss_score=pick_score(True),
            description=f"Synthetic stand-in: Xen {comp} critical flaw.",
        ))

    for _ in range(kvm_crit - common_crit):
        comp = kvm_assigner.next_component()
        records.append(CVERecord(
            cve_id=synth_id(), year=year, affected=frozenset({KVM}),
            component=comp, cvss_score=pick_score(True),
            description=f"Synthetic stand-in: KVM {comp} critical flaw.",
        ))

    for _ in range(xen_med - common_med):
        records.append(CVERecord(
            cve_id=synth_id(), year=year, affected=frozenset({XEN}),
            component=rng.choice(MEDIUM_COMPONENTS[:5]),
            cvss_score=pick_score(False),
            description="Synthetic stand-in: Xen medium flaw.",
        ))
    for _ in range(kvm_med - common_med):
        records.append(CVERecord(
            cve_id=synth_id(), year=year, affected=frozenset({KVM}),
            component=rng.choice(MEDIUM_COMPONENTS[1:]),
            cvss_score=pick_score(False),
            description="Synthetic stand-in: KVM medium flaw.",
        ))
    return records


def load_default_database() -> VulnerabilityDatabase:
    """Build the deterministic default dataset (Table 1-faithful)."""
    rng = random.Random(0xCE5A)
    serial = itertools.count(1)
    xen_assigner = _ComponentAssigner(XEN_CRITICAL_COMPONENTS,
                                      XEN_CRITICAL_SHARES)
    kvm_assigner = _ComponentAssigner(KVM_CRITICAL_COMPONENTS,
                                      KVM_CRITICAL_SHARES)
    records: List[CVERecord] = []
    for year in sorted(TABLE1_COUNTS):
        records.extend(
            _make_records_for_year(year, TABLE1_COUNTS[year], rng, serial,
                                   xen_assigner, kvm_assigner)
        )

    # Attach the §2.2 timeline data.  The two named endpoints land on KVM
    # records of the matching year; the remaining 22 windows spread over
    # other KVM records (year is irrelevant for the statistics).
    def _pick_kvm_record(year: int, taken: set) -> CVERecord:
        for record in records:
            if (record.affects(KVM) and record.year == year
                    and record.cve_id not in taken):
                return record
        raise VulnDBError(f"no KVM record available in {year}")

    taken = set()
    assignments = {}  # cve_id -> (new_id, days)
    max_record = _pick_kvm_record(2017, taken)
    taken.add(max_record.cve_id)
    assignments[max_record.cve_id] = ("CVE-2017-12188", 180)
    min_record = _pick_kvm_record(2013, taken)
    taken.add(min_record.cve_id)
    assignments[min_record.cve_id] = ("CVE-2013-0311", 8)
    remaining_days = [d for d in KVM_WINDOW_DAYS if d not in (180, 8)]
    day_iter = iter(remaining_days)
    for record in records:
        if not record.affects(KVM) or record.cve_id in taken:
            continue
        try:
            days = next(day_iter)
        except StopIteration:
            break
        taken.add(record.cve_id)
        assignments[record.cve_id] = (record.cve_id, days)

    rebuilt: List[CVERecord] = []
    for record in records:
        assigned = assignments.get(record.cve_id)
        if assigned is None:
            rebuilt.append(record)
            continue
        new_id, days = assigned
        rebuilt.append(CVERecord(
            cve_id=new_id, year=record.year, affected=record.affected,
            component=record.component, cvss_score=record.cvss_score,
            description=record.description, days_to_patch=days,
        ))

    # The one Xen flaw with a public timeline: patched 7 days after report.
    for i, record in enumerate(rebuilt):
        if record.affected == frozenset({XEN}) and record.year == 2016 \
                and record.severity is Severity.CRITICAL:
            rebuilt[i] = CVERecord(
                cve_id="CVE-2016-6258", year=2016, affected=record.affected,
                component="pv", cvss_score=record.cvss_score,
                description="Xen PV pagetable flaw; patch released 7 days "
                            "after discovery.",
                days_to_patch=7,
            )
            break

    return VulnerabilityDatabase(rebuilt)
