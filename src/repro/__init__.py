"""HyperTP reproduction — mitigating vulnerability windows with hypervisor
transplant (EuroSys 2021).

The public API re-exports the pieces a downstream user needs:

* build simulated hosts (:mod:`repro.hw`, :mod:`repro.hypervisors`) and VMs
  (:mod:`repro.guest`);
* transplant them with :class:`HyperTP` (InPlaceTP / MigrationTP);
* reason about vulnerabilities with :mod:`repro.vulndb`;
* orchestrate fleets with :mod:`repro.orchestrator` and clusters with
  :mod:`repro.cluster`;
* run fleet-scale emergency-response campaigns — and measure the fleet's
  vulnerability window — with :mod:`repro.fleet`;
* replay a whole disclosure feed and respond continuously with
  :mod:`repro.sentinel` (the paper's operational loop as a subsystem);
* replay the paper's workloads with :mod:`repro.workloads`.

Quickstart::

    from repro import (HyperTP, HypervisorKind, Machine, M1_SPEC,
                       VMConfig, XenHypervisor, SimClock)

    machine = Machine(M1_SPEC)
    xen = XenHypervisor()
    xen.boot(machine)
    xen.create_vm(VMConfig("vm0", vcpus=1))
    report = HyperTP().inplace(machine, HypervisorKind.KVM, SimClock())
    print(report.downtime_s)  # ~1.7 s on M1, as in the paper
"""

import importlib

__version__ = "1.0.0"

# Lazy re-exports (PEP 562).  Eager imports here would pull the whole
# simulation tree into every interpreter that touches any ``repro``
# submodule — ~200 ms that the ``repro.par`` worker boot path and the
# CLI pay on every process spawn.  Attributes resolve on first access.
_EXPORTS = {
    "ReproError": "repro.errors",
    "TransplantError": "repro.errors",
    "MigrationError": "repro.errors",
    "NoSafeHypervisorError": "repro.errors",
    "SimClock": "repro.sim",
    "Engine": "repro.sim",
    "Machine": "repro.hw",
    "MachineSpec": "repro.hw",
    "M1_SPEC": "repro.hw",
    "M2_SPEC": "repro.hw",
    "CLUSTER_NODE_SPEC": "repro.hw",
    "Fabric": "repro.hw",
    "VMConfig": "repro.guest",
    "VirtualMachine": "repro.guest",
    "VMState": "repro.guest",
    "Hypervisor": "repro.hypervisors",
    "HypervisorKind": "repro.hypervisors",
    "XenHypervisor": "repro.hypervisors",
    "KVMHypervisor": "repro.hypervisors",
    "make_hypervisor": "repro.hypervisors",
    "HyperTP": "repro.core",
    "TransplantReport": "repro.core",
    "InPlaceTP": "repro.core",
    "InPlaceReport": "repro.core",
    "MigrationTP": "repro.core",
    "LiveMigration": "repro.core",
    "MigrationReport": "repro.core",
    "OptimizationConfig": "repro.core",
    "CostModel": "repro.core",
    "DEFAULT_COST_MODEL": "repro.core",
    "load_default_database": "repro.vulndb",
    "TransplantAdvisor": "repro.vulndb",
    "TransplantAdvice": "repro.vulndb",
    "Severity": "repro.vulndb",
    "NovaCompute": "repro.orchestrator",
    "DatacenterAPI": "repro.orchestrator",
    "UpgradeCampaign": "repro.cluster",
    "FleetConfig": "repro.fleet",
    "FleetController": "repro.fleet",
    "FleetMetrics": "repro.fleet",
    "FailureInjector": "repro.fleet",
    "RetryPolicy": "repro.fleet",
    "Sentinel": "repro.sentinel",
    "SentinelConfig": "repro.sentinel",
    "SentinelReport": "repro.sentinel",
    "FeedSchedule": "repro.sentinel",
    "PolicyConfig": "repro.sentinel",
}


def __getattr__(name):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(module), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))

__all__ = [
    "ReproError",
    "TransplantError",
    "MigrationError",
    "NoSafeHypervisorError",
    "SimClock",
    "Engine",
    "Machine",
    "MachineSpec",
    "M1_SPEC",
    "M2_SPEC",
    "CLUSTER_NODE_SPEC",
    "Fabric",
    "VMConfig",
    "VirtualMachine",
    "VMState",
    "Hypervisor",
    "HypervisorKind",
    "XenHypervisor",
    "KVMHypervisor",
    "make_hypervisor",
    "HyperTP",
    "TransplantReport",
    "InPlaceTP",
    "InPlaceReport",
    "MigrationTP",
    "LiveMigration",
    "MigrationReport",
    "OptimizationConfig",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "load_default_database",
    "TransplantAdvisor",
    "TransplantAdvice",
    "Severity",
    "NovaCompute",
    "DatacenterAPI",
    "UpgradeCampaign",
    "FleetConfig",
    "FleetController",
    "FleetMetrics",
    "FailureInjector",
    "RetryPolicy",
    "Sentinel",
    "SentinelConfig",
    "SentinelReport",
    "FeedSchedule",
    "PolicyConfig",
    "__version__",
]
