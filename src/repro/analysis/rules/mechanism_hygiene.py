"""Mechanism cost-path hygiene rule.

``mechanism-hygiene``: the per-action cost helpers — the ``CostModel``
phase methods and ``plan_precopy`` — may only be called from the
mechanism layer itself (``core/pipeline.py``, ``core/inplace.py``,
``core/migration.py``, ``core/timings.py``).  Everybody else must go
through :class:`repro.core.pipeline.StagePlan`.

This is the teeth of the staged-pipeline refactor: before it, three
consumers (the cluster executor, the fleet controller and the
orchestrator policy) each re-summed the phase helpers in their own
float-association and drifted apart by design.  A helper call outside
the pipeline layer is a fourth cost path waiting to happen.
"""

import ast
from typing import Iterable

from repro.analysis.engine import Rule, register_rule
from repro.analysis.findings import Finding
from repro.analysis.project import Project, SourceModule, dotted_name
from repro.analysis.rules.hygiene import _import_aliases

#: the modules that implement (and are allowed to price) the mechanisms
MECHANISM_SCOPE = (
    "core/pipeline.py",
    "core/inplace.py",
    "core/migration.py",
    "core/timings.py",
)

#: per-action cost helpers: CostModel phase methods + the pre-copy planner
COST_HELPERS = frozenset({
    "pram_phase_s",
    "translate_phase_s",
    "reboot_phase_s",
    "restore_phase_s",
    "stopcopy_overhead_s",
    "kernel_boot_s",
    "plan_precopy",
})


@register_rule
class MechanismHygieneRule(Rule):
    name = "mechanism-hygiene"
    description = (
        "per-action cost helpers (CostModel phase methods, plan_precopy) "
        "only inside the mechanism layer; everyone else derives durations "
        "from StagePlan"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            if module.path.endswith(MECHANISM_SCOPE):
                continue
            yield from self._check_module(module)

    def _check_module(self, module: SourceModule) -> Iterable[Finding]:
        aliases = _import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            head, _, tail = dotted.partition(".")
            resolved = aliases.get(head)
            if resolved is not None:
                dotted = resolved + ("." + tail if tail else "")
            helper = dotted.rsplit(".", 1)[-1]
            if helper in COST_HELPERS:
                yield self.finding(
                    module.path, node.lineno,
                    f"{helper}() outside the mechanism layer opens a "
                    f"second cost path; derive the duration from a "
                    f"repro.core.pipeline StagePlan instead",
                )
