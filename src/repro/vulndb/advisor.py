"""Transplant decision support.

Implements the paper's operational logic (§1, §3.1): when a critical flaw
lands on the datacenter's hypervisor, scan the operator's hypervisor
repertoire for one that is (a) not affected by the triggering flaw and
(b) not subject to any other currently-open critical flaw.  If one exists,
recommend transplanting to it (and back once the patch ships).
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import NoSafeHypervisorError, VulnDBError
from repro.vulndb.cve import CVERecord, Severity
from repro.vulndb.data import VulnerabilityDatabase


@dataclass
class TransplantAdvice:
    """The advisor's answer for one triggering CVE."""

    trigger: str
    affected_hypervisors: List[str]
    recommended_target: Optional[str]
    rejected: Dict[str, str] = field(default_factory=dict)
    transplant_needed: bool = True

    @property
    def safe(self) -> bool:
        return self.recommended_target is not None or not self.transplant_needed


class TransplantAdvisor:
    """Evaluates a hypervisor pool against open vulnerabilities."""

    def __init__(self, db: VulnerabilityDatabase,
                 hypervisor_pool: Sequence[str] = ("xen", "kvm")):
        if not hypervisor_pool:
            raise VulnDBError("hypervisor pool cannot be empty")
        self.db = db
        self.pool = list(hypervisor_pool)

    def open_critical_flaws(self, kind: str,
                            open_cves: Sequence[str]) -> List[CVERecord]:
        """Critical flaws from ``open_cves`` affecting ``kind``."""
        records = [self.db.get(cve_id) for cve_id in open_cves]
        return [r for r in records
                if r.affects(kind) and r.severity is Severity.CRITICAL]

    def advise(self, trigger_cve: str, current_hypervisor: str,
               open_cves: Sequence[str] = ()) -> TransplantAdvice:
        """Decide whether and where to transplant when ``trigger_cve`` drops.

        ``open_cves`` lists other currently-unpatched CVEs the operator is
        tracking; a candidate target must be clean against all of them.

        Tie-breaking is deterministic by construction: candidates are
        evaluated in **pool order** (the order the operator listed the
        repertoire in) and the first safe one wins.  When several targets
        are equally safe, pool position is therefore the operator's
        preference ranking — callers that want a different ranking (e.g.
        attack-surface escape-fraction scoring, as ``repro.sentinel``
        does) evaluate candidates themselves and pass the result down.
        """
        trigger = self.db.get(trigger_cve)
        advice = TransplantAdvice(
            trigger=trigger_cve,
            affected_hypervisors=sorted(trigger.affected),
            recommended_target=None,
        )
        if not trigger.affects(current_hypervisor):
            advice.transplant_needed = False
            return advice
        if trigger.severity is not Severity.CRITICAL:
            # The paper reserves transplant for critical flaws; medium ones
            # wait for the ordinary patch cycle.
            advice.transplant_needed = False
            advice.rejected["*"] = (
                f"{trigger_cve} is {trigger.severity.value}; transplant is "
                f"reserved for critical flaws"
            )
            return advice

        all_open = list(open_cves)
        if trigger_cve not in all_open:
            all_open.append(trigger_cve)
        for candidate in self.pool:
            if candidate == current_hypervisor:
                continue
            blocking = self.open_critical_flaws(candidate, all_open)
            if blocking:
                advice.rejected[candidate] = (
                    "vulnerable to " + ", ".join(r.cve_id for r in blocking)
                )
                continue
            advice.recommended_target = candidate
            break
        return advice

    def advise_or_raise(self, trigger_cve: str, current_hypervisor: str,
                        open_cves: Sequence[str] = ()) -> TransplantAdvice:
        """Like :meth:`advise` but raises when no safe target exists."""
        advice = self.advise(trigger_cve, current_hypervisor, open_cves)
        if advice.transplant_needed and advice.recommended_target is None:
            raise NoSafeHypervisorError(
                f"no hypervisor in {self.pool} is safe against "
                f"{trigger_cve} (+{len(open_cves)} open flaws): "
                f"{advice.rejected}"
            )
        return advice

    def transplants_per_year(self, current_hypervisor: str) -> Dict[int, int]:
        """How often the operator would transplant: one event per critical
        flaw on the running hypervisor (the paper's feasibility argument —
        the number stays low)."""
        events: Dict[int, int] = {}
        for record in self.db.affecting(current_hypervisor, Severity.CRITICAL):
            events[record.year] = events.get(record.year, 0) + 1
        return dict(sorted(events.items()))
