"""Live fleet inventory: who runs what, and what is open against it.

The policy layer asks two questions the raw vulndb cannot answer alone:
*which hosts are exposed to this CVE right now* (their hypervisor is
affected and the flaw is unpatched), and *how much exposure has the fleet
accrued* (the host-days integral the report publishes).  This module owns
both, updated live as disclosures arrive, campaigns commit hosts, and
patches close flaws.

Exposure accounting uses the standard accrue-then-mutate discipline: every
mutation first calls :meth:`FleetInventory.advance` to integrate
``exposed-hosts x elapsed-time`` for each open CVE up to *now*, then
applies the change.  The integral is therefore exact for piecewise-
constant exposure, which is exactly what a discrete-event fleet produces.
"""

from typing import Dict, List

from repro.errors import SentinelError
from repro.vulndb.cve import CVERecord

#: nominal running versions per hypervisor kind (report cosmetics; the
#: vulndb dataset is keyed by kind, not version)
DEFAULT_VERSIONS = {
    "xen": "4.13",
    "kvm": "5.4",
    "nova": "1.0",
}

DAY_S = 86400.0


class FleetInventory:
    """Per-host hypervisor state plus the open-CVE exposure ledger."""

    def __init__(self, hosts: Dict[str, str]):
        if not hosts:
            raise SentinelError("inventory needs at least one host")
        self._kind: Dict[str, str] = dict(hosts)
        self._version: Dict[str, str] = {
            host: DEFAULT_VERSIONS.get(kind, "unknown")
            for host, kind in self._kind.items()
        }
        self._open: Dict[str, CVERecord] = {}
        #: exposure-host-seconds accrued per CVE (closed CVEs keep theirs)
        self.exposure_s: Dict[str, float] = {}
        self._accrued_to_s = 0.0

    # ------------------------------------------------------------------
    # queries

    def hosts(self) -> List[str]:
        return sorted(self._kind)

    def kind_of(self, host: str) -> str:
        try:
            return self._kind[host]
        except KeyError:
            raise SentinelError(f"unknown host {host!r}") from None

    def version_of(self, host: str) -> str:
        self.kind_of(host)
        return self._version[host]

    def kinds(self) -> Dict[str, List[str]]:
        """Hypervisor kind -> sorted hosts running it."""
        grouped: Dict[str, List[str]] = {}
        for host in sorted(self._kind):
            grouped.setdefault(self._kind[host], []).append(host)
        return grouped

    def open_cves(self) -> List[str]:
        return sorted(self._open)

    def is_open(self, cve_id: str) -> bool:
        return cve_id in self._open

    def exposed_hosts(self, cve_id: str) -> List[str]:
        """Hosts whose current hypervisor the open flaw affects."""
        record = self._open.get(cve_id)
        if record is None:
            return []
        return [host for host in sorted(self._kind)
                if record.affects(self._kind[host])]

    def exposure_count(self, cve_id: str) -> int:
        return len(self.exposed_hosts(cve_id))

    # ------------------------------------------------------------------
    # mutations (each accrues exposure up to *now* first)

    def advance(self, now_s: float) -> None:
        """Integrate exposure for every open CVE up to ``now_s``."""
        if now_s < self._accrued_to_s:
            raise SentinelError(
                f"inventory time moved backwards: {now_s} < "
                f"{self._accrued_to_s}"
            )
        elapsed = now_s - self._accrued_to_s
        if elapsed > 0:
            for cve_id in self._open:
                count = self.exposure_count(cve_id)
                if count:
                    self.exposure_s[cve_id] = (
                        self.exposure_s.get(cve_id, 0.0) + count * elapsed
                    )
        self._accrued_to_s = now_s

    def open_cve(self, now_s: float, record: CVERecord) -> None:
        """A disclosure arrived: the flaw is open from ``now_s`` on."""
        self.advance(now_s)
        if record.cve_id in self._open:
            raise SentinelError(f"{record.cve_id} is already open")
        self._open[record.cve_id] = record
        self.exposure_s.setdefault(record.cve_id, 0.0)

    def close_cve(self, now_s: float, cve_id: str) -> None:
        """The patch was applied fleet-wide: the flaw stops accruing."""
        self.advance(now_s)
        if cve_id not in self._open:
            raise SentinelError(f"{cve_id} is not open")
        del self._open[cve_id]

    def commit_host(self, now_s: float, host: str, kind: str) -> None:
        """A campaign finished transplanting ``host`` onto ``kind``."""
        self.advance(now_s)
        self.kind_of(host)  # validates
        self._kind[host] = kind
        self._version[host] = DEFAULT_VERSIONS.get(kind, "unknown")

    # ------------------------------------------------------------------
    # reporting

    def exposure_host_days(self, cve_id: str) -> float:
        return self.exposure_s.get(cve_id, 0.0) / DAY_S

    def snapshot(self) -> Dict[str, object]:
        """Deterministic summary for the sentinel report."""
        return {
            "hosts": {
                host: {"kind": self._kind[host],
                       "version": self._version[host]}
                for host in sorted(self._kind)
            },
            "open_cves": self.open_cves(),
        }
