"""Randomized fleet stress test — a lightweight model check.

Drives a small fleet through a long, seeded-random sequence of operations
(create/destroy VMs, in-place transplants in every direction, migrations,
injected failures) and asserts the global invariants after every step:

* every VM the model says is alive is RUNNING on exactly one host and its
  memory digest matches the model's expectation;
* no host leaks pinned frames or staged kernels between operations;
* host memory accounting equals the sum of resident guests' images.
"""

import random

import pytest

from repro.errors import TransplantError
from repro.guest.vm import VMConfig, VMState
from repro.hw.machine import M1_SPEC, Machine
from repro.hw.network import Fabric
from repro.hypervisors import make_hypervisor
from repro.hypervisors.base import HypervisorKind
from repro.sim.clock import SimClock
from repro.core.inplace import InPlaceTP
from repro.core.migration import MigrationTP
from repro.guest.devices import make_default_platform
from repro.hypervisors.nova.formats import NOVA_IOAPIC_PINS
from repro.guest.devices import KVM_IOAPIC_PINS, XEN_IOAPIC_PINS

GIB = 1024 ** 3
KINDS = (HypervisorKind.XEN, HypervisorKind.KVM, HypervisorKind.NOVA)
PINS = {
    HypervisorKind.XEN: XEN_IOAPIC_PINS,
    HypervisorKind.KVM: KVM_IOAPIC_PINS,
    HypervisorKind.NOVA: NOVA_IOAPIC_PINS,
}


class FleetModel:
    """The oracle: what the fleet *should* look like."""

    def __init__(self, hosts):
        self.hosts = hosts  # name -> Machine
        self.vm_host = {}  # vm name -> host name
        self.vm_digest = {}  # vm name -> expected digest

    def check(self):
        for host_name, machine in self.hosts.items():
            hypervisor = machine.hypervisor
            assert hypervisor is not None
            assert machine.staged_kernel is None
            assert not machine.memory.pinned_frames(), \
                f"{host_name} leaked pinned frames"
            resident = {d.vm.name for d in hypervisor.domains.values()}
            expected = {vm for vm, h in self.vm_host.items()
                        if h == host_name}
            assert resident == expected, \
                f"{host_name}: resident {resident} != model {expected}"
            guest_bytes = sum(d.vm.image.size_bytes
                              for d in hypervisor.domains.values())
            assert machine.memory.allocated_bytes == guest_bytes
            for domain in hypervisor.domains.values():
                assert domain.vm.state is VMState.RUNNING
                assert (domain.vm.image.content_digest()
                        == self.vm_digest[domain.vm.name])


def build_fleet(rng):
    fabric = Fabric()
    hosts = {}
    for i, kind in enumerate(KINDS):
        machine = Machine(M1_SPEC, name=f"stress-{i}")
        make_hypervisor(kind).boot(machine)
        hosts[machine.name] = machine
    fabric.full_mesh(hosts.values())
    return fabric, hosts


@pytest.mark.parametrize("seed", [1, 7, 42])
def test_randomized_fleet_operations(seed):
    rng = random.Random(seed)
    fabric, hosts = build_fleet(rng)
    model = FleetModel(hosts)
    clock = SimClock()
    vm_serial = 0

    def create_vm(host_name):
        nonlocal vm_serial
        machine = hosts[host_name]
        hypervisor = machine.hypervisor
        if machine.memory.free_bytes < 2 * GIB:
            return
        name = f"svm{vm_serial}"
        vm_serial += 1
        domain = hypervisor.create_vm(VMConfig(
            name, vcpus=rng.randint(1, 2), memory_bytes=GIB,
            seed=rng.randint(0, 9999),
        ))
        domain.vm.platform = make_default_platform(
            domain.vm.config.vcpus, ioapic_pins=PINS[hypervisor.kind],
            seed=rng.randint(0, 9999),
        )
        model.vm_host[name] = host_name
        model.vm_digest[name] = domain.vm.image.content_digest()

    def destroy_vm(host_name):
        hypervisor = hosts[host_name].hypervisor
        if not hypervisor.domains:
            return
        domid = rng.choice(sorted(hypervisor.domains))
        name = hypervisor.domains[domid].vm.name
        hypervisor.destroy_domain(domid)
        del model.vm_host[name]
        del model.vm_digest[name]

    def guest_writes(host_name):
        hypervisor = hosts[host_name].hypervisor
        for domain in hypervisor.domains.values():
            domain.vm.image.dirty_some(0.05, rng)
            model.vm_digest[domain.vm.name] = \
                domain.vm.image.content_digest()

    def inplace(host_name):
        machine = hosts[host_name]
        current = machine.hypervisor.kind
        target = rng.choice([k for k in KINDS if k is not current])
        fail_phase = rng.choice([None, None, None, "pram", "translate"])
        hook = None
        if fail_phase is not None:
            def hook(phase, fail=fail_phase):
                if phase == fail:
                    raise RuntimeError("chaos")
        transplant = InPlaceTP(machine, target, failure_hook=hook)
        try:
            transplant.run(clock)
        except TransplantError:
            assert transplant.rolled_back

    def migrate(host_name):
        source = hosts[host_name]
        src_hv = source.hypervisor
        if not src_hv.domains:
            return
        candidates = [m for m in hosts.values()
                      if m is not source
                      and m.hypervisor.kind is not src_hv.kind
                      and m.memory.free_bytes >= 2 * GIB]
        if not candidates:
            return
        destination = rng.choice(candidates)
        domid = rng.choice(sorted(src_hv.domains))
        domain = src_hv.domains[domid]
        name = domain.vm.name
        MigrationTP(fabric, source, destination).migrate(
            domain, SimClock(clock.now), guest_writes_rng=rng,
            dirty_rate_bytes_s=rng.choice([1 << 20, 32 << 20]),
        )
        model.vm_host[name] = destination.name
        model.vm_digest[name] = domain.vm.image.content_digest()

    operations = [create_vm, create_vm, guest_writes, inplace, migrate,
                  destroy_vm]
    for _ in range(40):
        op = rng.choice(operations)
        host = rng.choice(sorted(hosts))
        op(host)
        clock.advance(1.0)
        model.check()

    # The fleet survived 40 random operations with every invariant intact.
    assert sum(len(m.hypervisor.domains) for m in hosts.values()) \
        == len(model.vm_host)
