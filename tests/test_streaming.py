"""Tests for the video-streaming workload model."""

import pytest

from repro.errors import ReproError
from repro.hw.machine import M1_SPEC
from repro.hypervisors.base import HypervisorKind
from repro.sim.clock import SimClock
from repro.core.transplant import HyperTP
from repro.bench.runner import make_xen_host
from repro.workloads.base import HostTimeline
from repro.workloads.generator import timeline_for_inplace
from repro.workloads.streaming import StreamingWorkload

XEN = HypervisorKind.XEN
KVM = HypervisorKind.KVM


def quiet_timeline():
    return HostTimeline(switches=[(0.0, XEN)])


class TestThroughput:
    def test_baseline_scales_with_clients(self):
        small = StreamingWorkload(clients=5)
        large = StreamingWorkload(clients=50)
        assert large.baseline(XEN) == pytest.approx(10 * small.baseline(XEN))

    def test_outage_zeroes_throughput(self):
        workload = StreamingWorkload(noise=0.0)
        timeline = HostTimeline(switches=[(0.0, XEN)],
                                network_down=[(10.0, 20.0)])
        series = workload.run(30.0, timeline)
        assert series.values[15] == 0.0
        assert series.values[5] > 0

    def test_validation(self):
        with pytest.raises(ReproError):
            StreamingWorkload(clients=0)
        with pytest.raises(ReproError):
            StreamingWorkload(buffer_s=0)


class TestPlayback:
    def test_no_outage_no_rebuffering(self):
        stats = StreamingWorkload().playback(60.0, quiet_timeline())
        assert stats.rebuffer_events == 0
        assert stats.rebuffer_seconds == 0.0
        assert stats.played_seconds == pytest.approx(60.0, abs=0.5)

    def test_short_outage_absorbed_by_buffer(self):
        # A 3 s blackout against a 12 s buffer: clients never notice.
        workload = StreamingWorkload(buffer_s=12.0)
        timeline = HostTimeline(switches=[(0.0, XEN)],
                                network_down=[(20.0, 23.0)])
        stats = workload.playback(60.0, timeline)
        assert stats.rebuffer_events == 0

    def test_long_outage_rebuffers(self):
        # A 30 s blackout overwhelms the buffer.
        workload = StreamingWorkload(buffer_s=12.0)
        timeline = HostTimeline(switches=[(0.0, XEN)],
                                network_down=[(20.0, 50.0)])
        stats = workload.playback(90.0, timeline)
        assert stats.rebuffer_events == 1
        assert stats.rebuffer_seconds > 10.0
        assert stats.rebuffer_ratio > 0.1

    def test_inplace_transplant_does_not_rebuffer(self):
        """The headline streaming claim: InPlaceTP's ~9 s interruption
        (downtime + NIC) fits inside a normal client buffer."""
        machine = make_xen_host(M1_SPEC, vm_count=1, vcpus=2,
                                memory_gib=8.0)
        report = HyperTP().inplace(machine, KVM, SimClock())
        timeline = timeline_for_inplace(report, 30.0, XEN, KVM)
        stats = StreamingWorkload(buffer_s=12.0).playback(120.0, timeline)
        assert stats.rebuffer_events == 0

    def test_tiny_buffer_does_rebuffer_through_transplant(self):
        machine = make_xen_host(M1_SPEC, vm_count=1, vcpus=2,
                                memory_gib=8.0)
        report = HyperTP().inplace(machine, KVM, SimClock())
        timeline = timeline_for_inplace(report, 30.0, XEN, KVM)
        stats = StreamingWorkload(buffer_s=2.0).playback(120.0, timeline)
        assert stats.rebuffer_events >= 1
