"""MigrationTP wire protocol.

The byte format that travels between the source and destination proxies
during a (heterogeneous) live migration: a negotiation header, one message
per pre-copy round carrying page batches, the UISR document for the VM_i
State, and a completion handshake with an end-to-end digest.

Every message rides a ``repro.io`` frame (magic, version, type tag,
length, CRC32 trailer), and PAGES payloads go through the shared
:mod:`repro.io.pages` batch encoder: consecutive GFNs run-length
coalesce, and a page whose content digest already crossed this stream is
sent as a back-reference, not a second copy.  Guest page *contents* are
represented by their digests (as everywhere in the simulation); the
protocol itself is byte-exact, so malformed or reordered streams fail
loudly, and the destination reconstructs the guest image purely from
what arrived on the wire — the digest check at the end is a real
end-to-end property, not bookkeeping.
"""

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import MigrationError, StateFormatError
from repro.io.frames import (
    END_FRAME,
    Packer,
    StreamMeter,
    Unpacker,
    decode_frame,
    encode_frame,
)
from repro.io.pages import DedupStats, PageStreamDecoder, PageStreamEncoder
from repro.obs import NULL_TRACER
from repro.obs.metrics import MetricsRegistry

WIRE_VERSION = 1


class MessageType(enum.Enum):
    HELLO = 1
    ROUND = 2
    PAGES = 3
    UISR = 4
    DONE = 5


@dataclass(frozen=True)
class Hello:
    """Stream negotiation: who is sending what to whom."""

    vm_name: str
    source_hypervisor: str
    target_hypervisor: str
    vcpus: int
    memory_bytes: int
    page_size: int


@dataclass(frozen=True)
class RoundHeader:
    """Start of one pre-copy round (round 0 = stop-and-copy)."""

    index: int
    page_count: int


@dataclass(frozen=True)
class PageBatch:
    """A batch of (gfn, digest) page records within the current round."""

    pages: Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class UISRPayload:
    """The encoded UISR document for the VM_i State."""

    blob: bytes


@dataclass(frozen=True)
class Done:
    """End of stream: the source's final whole-image digest."""

    final_digest: int


Message = object  # union of the dataclasses above

MAX_BATCH_PAGES = 1024


class WireEncoder:
    """Stateful message encoder for one stream direction.

    Holds the stream-scoped page digest table, so identical-content
    pages dedup across batches and across pre-copy rounds.
    """

    def __init__(self, meter: Optional[StreamMeter] = None):
        self._pages = PageStreamEncoder(meter)
        self._meter = meter

    @property
    def page_stats(self) -> DedupStats:
        return self._pages.stats

    def encode(self, message: Message) -> bytes:
        """Serialize one protocol message to its wire frame."""
        packer = Packer()
        if isinstance(message, Hello):
            name = message.vm_name.encode()
            packer.u32(WIRE_VERSION)
            packer.u16(len(name)).raw(name)
            src = message.source_hypervisor.encode()
            dst = message.target_hypervisor.encode()
            packer.u8(len(src)).raw(src)
            packer.u8(len(dst)).raw(dst)
            packer.u32(message.vcpus)
            packer.u64(message.memory_bytes)
            packer.u32(message.page_size)
            return self._frame(MessageType.HELLO, packer.bytes())
        if isinstance(message, RoundHeader):
            packer.u32(message.index).u64(message.page_count)
            return self._frame(MessageType.ROUND, packer.bytes())
        if isinstance(message, PageBatch):
            if len(message.pages) > MAX_BATCH_PAGES:
                raise MigrationError(
                    f"page batch too large: {len(message.pages)}"
                )
            return self._frame(MessageType.PAGES,
                               self._pages.encode_batch(message.pages))
        if isinstance(message, UISRPayload):
            packer.u32(len(message.blob)).raw(message.blob)
            return self._frame(MessageType.UISR, packer.bytes())
        if isinstance(message, Done):
            packer.u64(message.final_digest)
            return self._frame(MessageType.DONE, packer.bytes())
        raise MigrationError(f"unknown wire message {type(message).__name__}")

    def _frame(self, msg_type: MessageType, payload: bytes) -> bytes:
        frame = encode_frame(msg_type.value, payload)
        if self._meter is not None:
            self._meter.count_out(len(frame))
        return frame


class WireDecoder:
    """Stateful message decoder mirroring :class:`WireEncoder`."""

    def __init__(self, meter: Optional[StreamMeter] = None):
        self._pages = PageStreamDecoder()
        self._meter = meter

    def decode(self, data: bytes, offset: int = 0) -> Tuple[Message, int]:
        """Parse one frame at ``offset``; returns (message, consumed)."""
        frame_type, payload, consumed = decode_frame(data, offset)
        if self._meter is not None:
            self._meter.count_in(consumed)
        if frame_type == END_FRAME:
            raise StateFormatError(
                "unexpected END frame on the migration wire"
            )
        try:
            msg_type = MessageType(frame_type)
        except ValueError as exc:
            raise StateFormatError(
                f"unknown wire message type: {exc}"
            ) from exc

        if msg_type is MessageType.PAGES:
            pages = self._pages.decode_batch(payload)
            if len(pages) > MAX_BATCH_PAGES:
                raise StateFormatError(
                    f"page batch too large: {len(pages)}"
                )
            return PageBatch(pages=tuple(pages)), consumed

        body = Unpacker(payload)
        if msg_type is MessageType.HELLO:
            version = body.u32()
            if version != WIRE_VERSION:
                raise StateFormatError(f"unsupported wire version {version}")
            vm_name = body.raw(body.u16()).decode()
            src = body.raw(body.u8()).decode()
            dst = body.raw(body.u8()).decode()
            message = Hello(
                vm_name=vm_name, source_hypervisor=src,
                target_hypervisor=dst, vcpus=body.u32(),
                memory_bytes=body.u64(), page_size=body.u32(),
            )
        elif msg_type is MessageType.ROUND:
            message = RoundHeader(index=body.u32(), page_count=body.u64())
        elif msg_type is MessageType.UISR:
            message = UISRPayload(blob=body.raw(body.u32()))
        else:
            message = Done(final_digest=body.u64())
        body.expect_end()
        return message, consumed


def encode_message(message: Message) -> bytes:
    """Serialize one message with a fresh (stream-less) encoder."""
    return WireEncoder().encode(message)


def decode_message(frame: bytes) -> Tuple[Message, int]:
    """Parse one frame with a fresh (stream-less) decoder."""
    return WireDecoder().decode(frame)


class MigrationStream:
    """An in-order, in-memory message channel between the two proxies.

    The encoder/decoder pair is stream-scoped, so the page digest table
    (and with it the dedup savings) spans every batch the stream carries.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 tracer=NULL_TRACER):
        self._buffer = bytearray()
        self.bytes_sent = 0
        self.messages_sent = 0
        self.meter = StreamMeter("wire", registry)
        self._encoder = WireEncoder(self.meter)
        self._decoder = WireDecoder(self.meter)
        self._tracer = tracer

    @property
    def page_stats(self) -> DedupStats:
        """Dedup statistics for every page batch sent on this stream."""
        return self._encoder.page_stats

    def send(self, message: Message) -> int:
        with self._tracer.span("wire.send", "io"):
            frame = self._encoder.encode(message)
            self._buffer.extend(frame)
            self.bytes_sent += len(frame)
            self.messages_sent += 1
        return len(frame)

    def receive_all(self) -> Iterator[Message]:
        """Drain and decode every buffered message, in order."""
        view = bytes(self._buffer)
        self._buffer.clear()
        offset = 0
        while offset < len(view):
            with self._tracer.span("wire.receive", "io"):
                message, consumed = self._decoder.decode(view, offset)
            offset += consumed
            yield message


def send_pages(stream: MigrationStream, round_index: int,
               pages: List[Tuple[int, int]]) -> None:
    """Send one round: header followed by bounded batches."""
    stream.send(RoundHeader(index=round_index, page_count=len(pages)))
    for start in range(0, len(pages), MAX_BATCH_PAGES):
        stream.send(PageBatch(pages=tuple(pages[start:start + MAX_BATCH_PAGES])))


class StreamReceiver:
    """Destination-side protocol state machine.

    Applies messages in order and accumulates the reconstructed guest image
    as a GFN -> digest map; ``finish`` verifies the end-to-end digest.
    """

    def __init__(self):
        self.hello: Optional[Hello] = None
        self.page_digests: Dict[int, int] = {}
        self.uisr_blob: Optional[bytes] = None
        self.rounds_seen: List[int] = []
        self._expected_in_round = 0
        self._received_in_round = 0
        self.done: Optional[Done] = None

    def feed(self, message: Message) -> None:
        if isinstance(message, Hello):
            if self.hello is not None:
                raise MigrationError("duplicate HELLO on migration stream")
            self.hello = message
            return
        if self.hello is None:
            raise MigrationError("migration stream did not start with HELLO")
        if self.done is not None:
            raise MigrationError("message after DONE on migration stream")
        if isinstance(message, RoundHeader):
            if self._received_in_round != self._expected_in_round:
                raise MigrationError(
                    f"round {self.rounds_seen[-1]} truncated: "
                    f"{self._received_in_round}/{self._expected_in_round} pages"
                )
            self.rounds_seen.append(message.index)
            self._expected_in_round = message.page_count
            self._received_in_round = 0
            return
        if isinstance(message, PageBatch):
            if not self.rounds_seen:
                raise MigrationError("PAGES before any ROUND header")
            for gfn, digest in message.pages:
                self.page_digests[gfn] = digest
            self._received_in_round += len(message.pages)
            if self._received_in_round > self._expected_in_round:
                raise MigrationError("round overflow: too many pages")
            return
        if isinstance(message, UISRPayload):
            self.uisr_blob = message.blob
            return
        if isinstance(message, Done):
            if self._received_in_round != self._expected_in_round:
                raise MigrationError("DONE while a round is incomplete")
            self.done = message
            return
        raise MigrationError(f"unexpected message {type(message).__name__}")

    def finish(self, computed_digest: int) -> None:
        """Verify completeness and the end-to-end image digest."""
        if self.hello is None or self.done is None:
            raise MigrationError("migration stream incomplete")
        if self.uisr_blob is None:
            raise MigrationError("migration stream carried no UISR payload")
        expected_pages = self.hello.memory_bytes // self.hello.page_size
        if len(self.page_digests) != expected_pages:
            raise MigrationError(
                f"stream delivered {len(self.page_digests)} distinct pages, "
                f"guest has {expected_pages}"
            )
        if computed_digest != self.done.final_digest:
            raise MigrationError(
                "end-to-end digest mismatch after migration"
            )
