"""Tests for the repro.fleet emergency-response control plane."""

import json

import pytest

from repro.errors import FleetError
from repro.cluster.executor import PlanExecutor
from repro.cluster.plan import InPlaceAction, MigrationAction
from repro.cluster.model import WorkloadKind
from repro.cluster.upgrade import UpgradeCampaign
from repro.fleet import (
    FailureInjector,
    FailurePhase,
    FleetConfig,
    FleetController,
    FleetTrace,
    HostState,
    RetryPolicy,
    percentile,
)
from repro.fleet.simsync import FifoSemaphore, FleetProcess, Gate, Latch
from repro.fleet.state import HostRecord, Transition
from repro.sim.clock import SimClock
from repro.sim.engine import Engine

GIB = 1024 ** 3


def run_campaign(fail_rate=0.0, retry=None, **overrides):
    defaults = dict(hosts=6, vms_per_host=4, inplace_fraction=0.5,
                    group_size=2, seed=11)
    defaults.update(overrides)
    config = FleetConfig(**defaults)
    controller = FleetController(
        config,
        injector=FailureInjector(fail_rate, seed=config.seed),
        retry=retry if retry is not None else RetryPolicy(),
    )
    return controller, controller.run()


# -- executor on the staged pipeline ------------------------------------------

class TestExecutorCostFunctions:
    def test_executor_delegates_to_stage_plans(self):
        executor = PlanExecutor()
        migration = MigrationAction(
            vm_name="vm0", source="a", destination="b",
            memory_bytes=4 * GIB, workload=WorkloadKind.STREAMING,
        )
        upgrade = InPlaceAction(node_name="a", vm_count=5,
                                total_memory_bytes=20 * GIB)
        assert (executor.migration_time_s(migration)
                == executor.migration_plan(migration).total_s)
        assert (executor.upgrade_time_s(upgrade)
                == executor.upgrade_plan(upgrade).total_s)

    def test_campaign_results_unchanged(self):
        # Pinned against the seed's Fig. 13 behaviour: the refactor must not
        # move a single migration or second.
        campaign = UpgradeCampaign()
        results = campaign.sweep([0.0, 0.8])
        assert results[0].migration_count == 162
        assert results[1].migration_count == 31
        assert results[0].total_s == pytest.approx(748.99, abs=0.01)
        assert results[1].total_s == pytest.approx(175.70, abs=0.01)
        gains = UpgradeCampaign.time_gains(results)
        assert gains[1] == pytest.approx(0.765, abs=0.005)


# -- sync primitives ----------------------------------------------------------

class TestSimSync:
    def test_gate_parks_until_fired(self):
        engine = Engine(SimClock())
        gate = Gate(engine)
        log = []

        def waiter():
            yield gate
            log.append(engine.now)

        FleetProcess(engine, waiter(), name="w").start()
        engine.call_after(5.0, gate.fire)
        engine.run()
        assert log == [5.0]

    def test_fifo_semaphore_orders_grants(self):
        engine = Engine(SimClock())
        sem = FifoSemaphore(engine, 1)
        order = []

        def worker(name):
            yield sem.acquire()
            order.append(name)
            yield 1.0
            sem.release()

        for name in ("a", "b", "c"):
            FleetProcess(engine, worker(name), name=name).start()
        engine.run()
        assert order == ["a", "b", "c"]

    def test_unbounded_semaphore_grants_all(self):
        engine = Engine(SimClock())
        sem = FifoSemaphore(engine, None)
        done = []

        def worker(i):
            yield sem.acquire()
            yield 1.0
            done.append(i)

        for i in range(5):
            FleetProcess(engine, worker(i), name=str(i)).start()
        engine.run()
        assert len(done) == 5 and engine.now == 1.0

    def test_latch_opens_at_zero(self):
        engine = Engine(SimClock())
        latch = Latch(engine, 2)
        hits = []
        latch.subscribe(lambda: hits.append(engine.now))
        latch.count_down()
        engine.run()
        assert hits == []
        latch.count_down()
        engine.run()
        assert hits == [0.0]


class TestSemaphoreHold:
    def test_held_scope_releases_on_normal_exit(self):
        engine = Engine(SimClock())
        sem = FifoSemaphore(engine, 1)
        order = []

        def worker(name):
            with sem.held() as gate:
                yield gate
                order.append(name)
                yield 1.0

        for name in ("a", "b", "c"):
            FleetProcess(engine, worker(name), name=name).start()
        engine.run()
        assert order == ["a", "b", "c"]

    def test_held_scope_releases_on_exception(self):
        engine = Engine(SimClock())
        sem = FifoSemaphore(engine, 1)
        with pytest.raises(ValueError):
            with sem.held() as gate:
                assert gate.fired
                raise ValueError("boom")
        # The permit came back: the next acquire is granted immediately.
        assert sem.acquire().fired

    def test_held_scope_withdraws_a_queued_request(self):
        engine = Engine(SimClock())
        sem = FifoSemaphore(engine, 1)
        holder = sem.acquire()
        assert holder.fired
        with sem.held() as gate:
            assert not gate.fired  # queued behind the holder
        # Exiting withdrew the pending request rather than releasing a
        # permit the scope never owned; the holder's release then frees
        # the semaphore without tripping the over-release guard.
        sem.release()
        assert sem.acquire().fired

    def test_held_scope_cannot_be_reentered(self):
        engine = Engine(SimClock())
        sem = FifoSemaphore(engine, None)
        hold = sem.held()
        with hold:
            with pytest.raises(FleetError):
                hold.__enter__()


# -- state machine ------------------------------------------------------------

class TestHostStateMachine:
    def test_illegal_transition_rejected(self):
        trace = FleetTrace()
        record = HostRecord(name="h", wave=0, vm_count=1,
                            planned_migrations=0)
        with pytest.raises(FleetError):
            record.transition(HostState.DONE, 0.0, trace)

    def test_terminal_states_are_final(self):
        trace = FleetTrace()
        record = HostRecord(name="h", wave=0, vm_count=1,
                            planned_migrations=0)
        record.transition(HostState.TRANSPLANTING, 1.0, trace)
        record.transition(HostState.VERIFYING, 2.0, trace)
        record.transition(HostState.DONE, 3.0, trace)
        with pytest.raises(FleetError):
            record.transition(HostState.VERIFYING, 4.0, trace)
        assert record.window_s == 3.0

    def test_trace_in_flight_counting(self):
        trace = FleetTrace()
        trace.append(Transition(0.0, "a", HostState.PENDING,
                                HostState.EVACUATING))
        trace.append(Transition(0.0, "b", HostState.PENDING,
                                HostState.TRANSPLANTING))
        trace.append(Transition(1.0, "a", HostState.EVACUATING,
                                HostState.TRANSPLANTING))
        trace.append(Transition(2.0, "a", HostState.TRANSPLANTING,
                                HostState.VERIFYING))
        trace.append(Transition(3.0, "a", HostState.VERIFYING,
                                HostState.DONE))
        trace.append(Transition(4.0, "b", HostState.TRANSPLANTING,
                                HostState.VERIFYING))
        trace.append(Transition(5.0, "b", HostState.VERIFYING,
                                HostState.DONE))
        assert trace.max_in_flight() == 2
        assert trace.remediation_curve() == [[3.0, 1.0], [5.0, 2.0]]


class TestPercentile:
    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50.0) == 50.0
        assert percentile(values, 95.0) == 95.0
        assert percentile(values, 99.0) == 99.0
        assert percentile(values, 100.0) == 100.0

    def test_empty_rejected(self):
        with pytest.raises(FleetError):
            percentile([], 50.0)


# -- campaign invariants -------------------------------------------------------

class TestCampaignDeterminism:
    def test_same_seed_byte_identical_metrics(self):
        _, first = run_campaign(fail_rate=0.05, seed=13)
        _, second = run_campaign(fail_rate=0.05, seed=13)
        assert first.to_json() == second.to_json()

    def test_different_seed_differs(self):
        _, first = run_campaign(fail_rate=0.2, seed=13)
        _, second = run_campaign(fail_rate=0.2, seed=14)
        assert first.to_json() != second.to_json()


class TestWindowInvariant:
    def test_fleet_window_is_max_host_window(self):
        _, metrics = run_campaign()
        windows = [h.window_s for h in metrics.per_host
                   if h.window_s is not None]
        assert metrics.fleet_window_s == max(windows)
        assert metrics.window_percentiles_s["max"] == max(windows)

    def test_fleet_window_is_last_done_minus_disclosure(self):
        controller, metrics = run_campaign()
        last_done = max(t.time_s for t in controller.trace.transitions
                        if t.target is HostState.DONE)
        assert metrics.fleet_window_s == pytest.approx(
            last_done - metrics.disclosure_at_s
        )

    def test_disclosure_offset_shifts_timeline_not_window(self):
        _, base = run_campaign()
        _, offset = run_campaign(disclosure_at_s=3600.0)
        assert offset.fleet_window_s == pytest.approx(base.fleet_window_s)
        assert offset.completed_at_s == pytest.approx(
            base.completed_at_s + 3600.0
        )


class TestExecutorCompat:
    def test_degenerate_config_matches_upgrade_campaign(self):
        """No failures + sequential groups reproduces Fig. 13 within 1 %."""
        for fraction in (0.0, 0.4, 0.8):
            campaign = UpgradeCampaign(hosts=10, vms_per_host=10,
                                       group_size=2, seed=42)
            reference = campaign.run(fraction)
            config = FleetConfig(
                hosts=10, vms_per_host=10, inplace_fraction=fraction,
                group_size=2, seed=42, sequential_groups=True,
                concurrency=None,
            )
            metrics = FleetController(config).run()
            assert metrics.done_hosts == 10
            assert metrics.migrations_executed == reference.migration_count
            assert metrics.fleet_window_s == pytest.approx(
                reference.total_s, rel=0.01
            )


class TestFailureInjection:
    def test_every_host_terminal_under_failures(self):
        _, metrics = run_campaign(fail_rate=0.3, hosts=10,
                                  retry=RetryPolicy(max_retries=2))
        assert metrics.all_terminal
        assert metrics.done_hosts + metrics.rolled_back_hosts == 10
        assert metrics.retries_total > 0

    def test_retries_eventually_succeed(self):
        # With generous retry budget and a moderate rate, hosts get through.
        _, metrics = run_campaign(fail_rate=0.2,
                                  retry=RetryPolicy(max_retries=10,
                                                    backoff_base_s=1.0))
        assert metrics.done_hosts == 6
        assert metrics.retries_total > 0

    def test_fault_streams_do_not_depend_on_interleaving(self):
        # The same host draws the same faults whatever the concurrency.
        injector = FailureInjector(0.5, seed=99)
        a = injector.stream_for("node03")
        b = injector.stream_for("node03")
        draws_a = [a.strikes(FailurePhase.KEXEC) for _ in range(32)]
        draws_b = [b.strikes(FailurePhase.KEXEC) for _ in range(32)]
        assert draws_a == draws_b

    def test_bad_rate_rejected(self):
        with pytest.raises(FleetError):
            FailureInjector(1.5)

    def test_retry_budget_is_per_phase_not_cumulative(self):
        # Regression: a host that fails once in evacuation AND once in
        # kexec AND once in verify must survive with max_retries=1 — each
        # phase owns a fresh attempt counter.  A cumulative budget would
        # exhaust after the first phase's retry and roll the host back.
        class OneFaultPerPhase(FailureInjector):
            """Scripted: node00's first attempt of every phase faults."""

            def stream_for(self, host):
                stream = super().stream_for(host)
                if host == "node00":
                    pending = set(FailurePhase)

                    def scripted(phase, _stream=stream, _pending=pending):
                        _stream.draws += 1
                        if phase in _pending:
                            _pending.discard(phase)
                            return True
                        return False

                    stream.strikes = scripted
                return stream

        config = FleetConfig(hosts=4, vms_per_host=4, inplace_fraction=0.0,
                             group_size=2, seed=11)
        controller = FleetController(
            config,
            injector=OneFaultPerPhase(0.0, seed=config.seed),
            retry=RetryPolicy(max_retries=1, backoff_base_s=1.0),
        )
        metrics = controller.run()
        record = controller.records["node00"]
        assert record.state is HostState.DONE
        assert record.retries == len(FailurePhase)  # one per phase
        assert record.rollbacks == 0
        assert metrics.rolled_back_hosts == 0


class TestRollback:
    def _forced(self, phase, **overrides):
        defaults = dict(hosts=4, vms_per_host=4, inplace_fraction=0.5,
                        group_size=2, seed=3)
        defaults.update(overrides)
        config = FleetConfig(**defaults)
        controller = FleetController(
            config,
            injector=FailureInjector({phase: 1.0}, seed=config.seed),
            retry=RetryPolicy(max_retries=1, backoff_base_s=1.0),
        )
        return controller, controller.run()

    @pytest.mark.parametrize("phase", list(FailurePhase))
    def test_rollback_restores_host(self, phase):
        controller, metrics = self._forced(phase)
        assert metrics.rolled_back_hosts == 4
        assert metrics.all_terminal
        for name, record in controller.records.items():
            assert record.state is HostState.ROLLED_BACK
            # Host still runs the vulnerable source hypervisor...
            assert controller.host_hypervisor[name] == "xen"
            # ...and carries exactly its original VMs.
            hosted = {vm for vm, node in controller.placement.items()
                      if node == name}
            original = {vm.name for vm in controller._cluster.vms.values()}
            assert hosted <= original
        # Global accounting: every VM sits on exactly one node.
        assert sorted(controller.placement) == sorted(
            vm.name for vm in controller._cluster.vms.values()
        )

    def test_evacuation_rollback_returns_vms_home(self):
        controller, _ = self._forced(FailurePhase.EVACUATION)
        # Rollback restored the pre-campaign placement exactly: the seed
        # cluster places VMs round-robin-free, i.e. contiguously by index
        # (4 VMs per host here).
        expected = {}
        for index, vm in enumerate(sorted(controller.placement)):
            expected[vm] = f"node{index // 4:02d}"
        assert controller.placement == expected

    def test_rollback_counts_reported(self):
        _, metrics = self._forced(FailurePhase.VERIFY)
        assert metrics.rollbacks_total == 4
        assert metrics.done_hosts == 0
        assert metrics.window_percentiles_s == {}
        assert metrics.fleet_window_s is None


class TestConcurrencyCap:
    @pytest.mark.parametrize("cap", [1, 2, 4])
    def test_cap_never_exceeded(self, cap):
        controller, metrics = run_campaign(hosts=8, concurrency=cap)
        assert metrics.done_hosts == 8
        assert controller.trace.max_in_flight() <= cap

    def test_cap_respected_under_failures(self):
        controller, metrics = run_campaign(
            hosts=8, concurrency=2, fail_rate=0.3,
            retry=RetryPolicy(max_retries=2, backoff_base_s=1.0),
        )
        assert metrics.all_terminal
        assert controller.trace.max_in_flight() <= 2

    def test_wider_cap_is_no_slower(self):
        _, narrow = run_campaign(hosts=8, concurrency=1)
        _, wide = run_campaign(hosts=8, concurrency=8)
        assert wide.fleet_window_s <= narrow.fleet_window_s


class TestMetricsDocument:
    def test_json_shape(self):
        _, metrics = run_campaign(fail_rate=0.1)
        document = json.loads(metrics.to_json())
        assert document["format"] == "hypertp-fleet-metrics"
        assert document["campaign"]["source_hypervisor"] == "xen"
        assert document["campaign"]["target_hypervisor"] == "kvm"
        assert set(document["window"]["percentiles_s"]) == {
            "p50", "p95", "p99", "max",
        }
        assert len(document["per_host"]) == 6
        states = {h["state"] for h in document["per_host"]}
        assert states <= {"done", "rolled-back"}
        curve = document["window"]["remediation_curve"]
        assert curve[-1][1] == document["robustness"]["done_hosts"]
        times = [point[0] for point in curve]
        assert times == sorted(times)

    def test_advisor_gates_the_campaign(self):
        # A medium-severity CVE does not justify an emergency transplant.
        with pytest.raises(FleetError):
            FleetController(FleetConfig(trigger_cve="CVE-2015-8104"))

    def test_config_validation(self):
        with pytest.raises(FleetError):
            FleetConfig(hosts=0)
        with pytest.raises(FleetError):
            FleetConfig(concurrency=0)
        with pytest.raises(FleetError):
            FleetConfig(migration_streams=0)


# -- simsync bugfixes ---------------------------------------------------------

class TestSemaphoreOverRelease:
    def test_double_release_raises(self):
        # Regression: a double release used to silently raise the cap — an
        # admission semaphore of 2 would quietly become one of 3.
        engine = Engine(SimClock())
        sem = FifoSemaphore(engine, 2)
        sem.acquire()
        sem.release()
        with pytest.raises(FleetError, match="over-released"):
            sem.release()

    def test_release_with_waiters_never_overflows(self):
        engine = Engine(SimClock())
        sem = FifoSemaphore(engine, 1)
        sem.acquire()
        waiting = sem.acquire()
        assert not waiting.fired
        sem.release()  # hands the permit to the waiter, not the pool
        engine.run()
        assert waiting.fired
        sem.release()
        with pytest.raises(FleetError):
            sem.release()

    def test_unbounded_release_is_noop(self):
        engine = Engine(SimClock())
        sem = FifoSemaphore(engine, None)
        sem.release()
        sem.release()  # no cap to breach


class TestFleetProcessYields:
    def test_bool_yield_rejected(self):
        # Regression: bool is an int subclass, so ``yield done_flag`` used
        # to be accepted as a 1-second sleep instead of failing loudly.
        from repro.errors import SimulationError

        engine = Engine(SimClock())

        def buggy():
            yield True

        FleetProcess(engine, buggy(), name="buggy").start()
        with pytest.raises(SimulationError, match="yielded True"):
            engine.run()

    def test_return_value_captured(self):
        engine = Engine(SimClock())

        def worker():
            yield 1.0
            return 41 + 1

        process = FleetProcess(engine, worker(), name="w").start()
        engine.run()
        assert process.done
        assert process.result == 42

    def test_plain_finish_has_none_result(self):
        engine = Engine(SimClock())

        def worker():
            yield 0.5

        process = FleetProcess(engine, worker(), name="w").start()
        engine.run()
        assert process.done and process.result is None


# -- percentile exactness (satellite) -----------------------------------------

class TestPercentileExactness:
    def test_no_float_drift_at_integer_ranks(self):
        # Regression: 0.55 * 20 = 11.000000000000002 in floats, so a
        # float-multiplied ceil() picked rank 12 instead of 11.
        values = [float(v) for v in range(1, 21)]
        assert percentile(values, 55.0) == 11.0

    def test_exact_at_every_integer_boundary(self):
        import math
        from fractions import Fraction

        for n in (7, 20, 29, 100, 128):
            values = [float(v) for v in range(1, n + 1)]
            for q in range(1, 101):
                expected_rank = math.ceil(Fraction(n) * q / 100)
                assert percentile(values, float(q)) == float(expected_rank)

    def test_matches_statistics_quantiles_neighborhood(self):
        # Property check against the stdlib: nearest-rank must stay within
        # one order-statistic of the inclusive-interpolated quantile.
        import math
        import random
        import statistics

        rng = random.Random(1234)
        for trial in range(50):
            n = rng.randint(5, 200)
            values = sorted(rng.uniform(0, 1e4) for _ in range(n))
            cuts = statistics.quantiles(values, n=100, method="inclusive")
            for q in (10, 25, 50, 75, 90, 95, 99):
                ours = percentile(values, float(q))
                rank = math.ceil(n * q / 100) or 1
                lo = values[max(0, rank - 2)]
                hi = values[min(n - 1, rank)]
                assert lo <= cuts[q - 1] <= hi or ours == pytest.approx(
                    cuts[q - 1], rel=0.5
                )
                assert ours == values[rank - 1]

    def test_q_zero_is_minimum(self):
        assert percentile([3.0, 1.0, 2.0], 0.0) == 1.0

    def test_out_of_range_rejected(self):
        with pytest.raises(FleetError):
            percentile([1.0], 101.0)


# -- controller observability (tentpole) --------------------------------------

class TestCampaignObservability:
    def run_observed(self, **overrides):
        from repro.obs import MetricsRegistry, Tracer

        defaults = dict(hosts=6, vms_per_host=4, inplace_fraction=0.5,
                        group_size=2, seed=11)
        defaults.update(overrides)
        config = FleetConfig(**defaults)
        tracer = Tracer()
        registry = MetricsRegistry()
        controller = FleetController(
            config,
            injector=FailureInjector(0.0, seed=config.seed),
            tracer=tracer, registry=registry,
        )
        metrics = controller.run()
        return tracer, registry, metrics

    def test_one_track_per_host_plus_fleet(self):
        tracer, _, metrics = self.run_observed()
        tracks = tracer.trace.tracks()
        host_tracks = [t for t in tracks if t.startswith("node")]
        assert len(host_tracks) == metrics.hosts
        assert "fleet" in tracks

    def test_host_spans_nest_inside_wave_envelope(self):
        tracer, _, _ = self.run_observed()
        for track in tracer.trace.tracks():
            if not track.startswith("node"):
                continue
            spans = [s for s in tracer.trace.spans if s.track == track]
            wave = next(s for s in spans if s.category == "wave")
            for span in spans:
                assert wave.start_s <= span.start_s
                assert span.end_s <= wave.end_s

    def test_campaign_span_covers_fleet_window(self):
        tracer, _, metrics = self.run_observed()
        campaign = next(s for s in tracer.trace.spans
                        if s.category == "campaign")
        assert campaign.duration_s == pytest.approx(
            metrics.completed_at_s - metrics.disclosure_at_s
        )

    def test_trace_byte_identical_per_seed(self):
        first, _, _ = self.run_observed(seed=13)
        second, _, _ = self.run_observed(seed=13)
        assert first.to_chrome_trace() == second.to_chrome_trace()

    def test_registry_matches_metrics_document(self):
        _, registry, metrics = self.run_observed()
        assert registry.get("fleet_hosts_done_total").value == (
            metrics.done_hosts
        )
        assert registry.get("fleet_window_seconds").value == pytest.approx(
            metrics.fleet_window_s
        )
        histogram = registry.get("fleet_host_window_seconds")
        assert histogram.count == sum(
            1 for h in metrics.per_host if h.window_s is not None
        )
        assert histogram.max == pytest.approx(metrics.fleet_window_s)

    def test_registry_snapshot_byte_identical_per_seed(self):
        _, first, _ = self.run_observed(seed=13)
        _, second, _ = self.run_observed(seed=13)
        assert first.to_json() == second.to_json()

    def test_untraced_campaign_metrics_unchanged(self):
        _, _, observed = self.run_observed()
        _, plain = run_campaign()
        assert observed.to_json() == plain.to_json()
