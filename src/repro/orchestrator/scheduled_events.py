"""Scheduled-events service (the Azure Scheduled Events API analogue).

The paper notifies guests before a transplant "similarly to what is done on
Azure with the Scheduled Events API" (§4.2.3) and adopts Azure's 30-second
maintenance bound as the acceptable-downtime ceiling (§1).  This module
implements that notification plane: the operator posts maintenance events,
guests poll/acknowledge them, and the transplant machinery can require
acknowledgement (or a timeout) before pausing.
"""

import enum
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import OrchestratorError

#: Azure's documented not-to-exceed downtime for maintenance operations.
AZURE_MAINTENANCE_BOUND_S = 30.0

#: Azure gives guests this much notice before acting.
DEFAULT_NOTICE_S = 15 * 60.0


class EventType(enum.Enum):
    FREEZE = "freeze"      # brief pause (InPlaceTP)
    REDEPLOY = "redeploy"  # VM moves hosts (MigrationTP)
    REBOOT = "reboot"      # full restart (not used by HyperTP)


class EventState(enum.Enum):
    SCHEDULED = "scheduled"
    ACKNOWLEDGED = "acknowledged"
    STARTED = "started"
    COMPLETED = "completed"
    CANCELLED = "cancelled"


@dataclass
class MaintenanceEvent:
    """One scheduled maintenance operation against one VM."""

    event_id: str
    vm_name: str
    event_type: EventType
    not_before: float  # earliest simulated time the operation may start
    expected_duration_s: float
    state: EventState = EventState.SCHEDULED
    description: str = ""

    def is_pending(self) -> bool:
        return self.state in (EventState.SCHEDULED, EventState.ACKNOWLEDGED)


class ScheduledEventsService:
    """Per-datacenter event plane: post, poll, acknowledge, complete."""

    def __init__(self, notice_s: float = DEFAULT_NOTICE_S):
        if notice_s < 0:
            raise OrchestratorError("notice period cannot be negative")
        self.notice_s = notice_s
        self._events: Dict[str, MaintenanceEvent] = {}
        self._serial = itertools.count(1)

    # -- operator side ---------------------------------------------------------

    def post(self, vm_name: str, event_type: EventType, now: float,
             expected_duration_s: float,
             description: str = "") -> MaintenanceEvent:
        if expected_duration_s > AZURE_MAINTENANCE_BOUND_S and \
                event_type is EventType.FREEZE:
            raise OrchestratorError(
                f"freeze of {expected_duration_s:.1f}s exceeds the "
                f"{AZURE_MAINTENANCE_BOUND_S:.0f}s maintenance bound; "
                f"schedule a redeploy (migration) instead"
            )
        event = MaintenanceEvent(
            event_id=f"evt-{next(self._serial):06d}",
            vm_name=vm_name,
            event_type=event_type,
            not_before=now + self.notice_s,
            expected_duration_s=expected_duration_s,
            description=description,
        )
        self._events[event.event_id] = event
        return event

    def start(self, event_id: str, now: float,
              require_ack: bool = False) -> MaintenanceEvent:
        event = self._get(event_id)
        if not event.is_pending():
            raise OrchestratorError(
                f"{event_id} is {event.state.value}; cannot start"
            )
        if now < event.not_before:
            raise OrchestratorError(
                f"{event_id} may not start before t={event.not_before:.0f} "
                f"(now {now:.0f}) — guests were promised notice"
            )
        if require_ack and event.state is not EventState.ACKNOWLEDGED:
            raise OrchestratorError(
                f"{event_id} not acknowledged by {event.vm_name}"
            )
        event.state = EventState.STARTED
        return event

    def complete(self, event_id: str) -> None:
        event = self._get(event_id)
        if event.state is not EventState.STARTED:
            raise OrchestratorError(
                f"{event_id} is {event.state.value}; cannot complete"
            )
        event.state = EventState.COMPLETED

    def cancel(self, event_id: str) -> None:
        event = self._get(event_id)
        if not event.is_pending():
            raise OrchestratorError(
                f"{event_id} is {event.state.value}; cannot cancel"
            )
        event.state = EventState.CANCELLED

    # -- guest side ---------------------------------------------------------------

    def poll(self, vm_name: str) -> List[MaintenanceEvent]:
        """What a guest's agent sees when it polls the metadata endpoint."""
        return sorted(
            (e for e in self._events.values()
             if e.vm_name == vm_name and e.is_pending()),
            key=lambda e: e.not_before,
        )

    def acknowledge(self, event_id: str) -> None:
        """Guest agent: 'I have quiesced; proceed when ready.'

        Acknowledging lets the operator start before ``not_before``."""
        event = self._get(event_id)
        if event.state is not EventState.SCHEDULED:
            raise OrchestratorError(
                f"{event_id} is {event.state.value}; cannot acknowledge"
            )
        event.state = EventState.ACKNOWLEDGED
        event.not_before = 0.0  # explicit consent waives the notice period

    # -- queries -------------------------------------------------------------------

    def _get(self, event_id: str) -> MaintenanceEvent:
        try:
            return self._events[event_id]
        except KeyError:
            raise OrchestratorError(f"unknown event {event_id!r}") from None

    def history(self, vm_name: Optional[str] = None) -> List[MaintenanceEvent]:
        events = list(self._events.values())
        if vm_name is not None:
            events = [e for e in events if e.vm_name == vm_name]
        return sorted(events, key=lambda e: e.event_id)
