"""Table 4 — MigrationTP (Xen->KVM) vs Xen->Xen live migration.

Paper anchors: downtime 133.59 ms (Xen->Xen) vs 4.96 ms (MigrationTP);
total migration time 9.564 s vs 9.63 s for a 1 GB / 1 vCPU VM over 1 Gbps.
"""

from repro.bench.report import format_table, print_experiment
from repro.bench.runner import make_host_pair
from repro.core.migration import LiveMigration, MigrationTP
from repro.hw.machine import M1_SPEC
from repro.hypervisors.base import HypervisorKind


def run():
    source, destination, fabric = make_host_pair(M1_SPEC, HypervisorKind.XEN)
    domain = next(iter(source.hypervisor.domains.values()))
    xen_report = LiveMigration(fabric, source, destination).migrate(domain)

    source, destination, fabric = make_host_pair(M1_SPEC, HypervisorKind.KVM)
    domain = next(iter(source.hypervisor.domains.values()))
    tp_report = MigrationTP(fabric, source, destination).migrate(domain)

    return [
        ["Downtime (ms)", xen_report.downtime_s * 1000, 133.59,
         tp_report.downtime_s * 1000, 4.96],
        ["Migration time (s)", xen_report.total_s, 9.564,
         tp_report.total_s, 9.63],
    ]


def test_table4_migration_baseline(benchmark):
    rows = benchmark(run)
    print_experiment(
        "Table 4", "MigrationTP vs Xen->Xen live migration (1 vCPU, 1 GB)",
        format_table(
            ["metric", "Xen->Xen", "paper", "MigrationTP", "paper"], rows,
        ),
    )


if __name__ == "__main__":
    print_experiment(
        "Table 4", "MigrationTP vs Xen->Xen live migration (1 vCPU, 1 GB)",
        format_table(
            ["metric", "Xen->Xen", "paper", "MigrationTP", "paper"], run(),
        ),
    )
