"""pytest-benchmark configuration for the experiment harness."""

def pytest_benchmark_update_machine_info(config, machine_info):
    machine_info["note"] = (
        "All benchmarked experiments run on simulated time; wall-clock "
        "numbers measure the simulator, figures/tables print simulated "
        "seconds matching the paper's units."
    )
