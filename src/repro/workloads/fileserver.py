"""File-server workload: disk-bound I/O against remote storage.

The §4.1 design point made observable: the VM's disk lives on network
storage, so a file server's IOPS stall with the network and resume against
the *same* volume after a transplant — no disk state moves.  The model
drives a real :class:`~repro.storage.attach.BlockDriver`, so data written
before the transplant is read back, byte-for-byte (digest), after it.
"""

import random
from dataclasses import dataclass
from repro.errors import ReproError
from repro.hypervisors.base import HypervisorKind
from repro.storage.attach import BlockDriver
from repro.workloads.base import HostTimeline, Workload

BASE_IOPS = 4_000.0


@dataclass
class IOTrace:
    """What the server actually did over a run."""

    reads: int
    writes: int
    stalled_seconds: float
    verified_ok: bool


class FileServerWorkload(Workload):
    """NFS-ish server: random reads/writes over an attached volume."""

    metric_name = "fileserver-iops"
    metric_unit = "ops/s"
    network_dependent = True

    def __init__(self, driver: BlockDriver, write_fraction: float = 0.3,
                 seed: int = 0, noise: float = 0.02):
        super().__init__(seed=seed, noise=noise)
        if not 0.0 <= write_fraction <= 1.0:
            raise ReproError(f"bad write fraction {write_fraction}")
        self.driver = driver
        self.write_fraction = write_fraction
        self._io_rng = random.Random(seed ^ 0x10D0)

    def baseline(self, kind: HypervisorKind) -> float:
        # Remote-storage bound: hypervisor choice barely matters (§4.1).
        scale = 1.02 if kind is HypervisorKind.KVM else 1.0
        return BASE_IOPS * scale

    def serve(self, duration_s: float, timeline: HostTimeline,
              step_s: float = 0.5, ios_per_step: int = 4) -> IOTrace:
        """Run the server, issuing a sampled subset of real I/Os.

        Each active step performs ``ios_per_step`` real block operations on
        the attached volume (a sampled stand-in for the thousands the IOPS
        figure represents); written blocks are remembered and re-verified
        at the end — across whatever transplants the timeline contains.
        """
        volume = self.driver._volume()
        block_count = volume.block_count
        written = {}
        reads = writes = 0
        stalled = 0.0
        t = 0.0
        while t < duration_s:
            if timeline.is_paused(t) or timeline.is_network_down(t):
                stalled += step_s
                t += step_s
                continue
            for _ in range(ios_per_step):
                lba = self._io_rng.randrange(block_count)
                if self._io_rng.random() < self.write_fraction:
                    digest = self._io_rng.getrandbits(63) | 1
                    self.driver.write(lba, digest)
                    written[lba] = digest
                    writes += 1
                else:
                    self.driver.read(lba)
                    reads += 1
            t += step_s
        verified = all(self.driver.read(lba) == digest
                       for lba, digest in written.items())
        return IOTrace(reads=reads, writes=writes, stalled_seconds=stalled,
                       verified_ok=verified)

    def run_with_io(self, duration_s: float, timeline: HostTimeline
                    ) -> tuple:
        """(IOPS series, I/O trace) over one timeline."""
        series = self.run(duration_s, timeline)
        trace = self.serve(duration_s, timeline)
        return series, trace
