"""Tests for the static verification pass (``repro.analysis``).

Each rule gets a known-bad fixture (exact finding locations asserted) and a
known-good fixture (clean), built with :meth:`Project.from_sources` so the
rules are exercised without touching the real tree.  The final tests run
the full pass over the shipped ``src/repro`` package and require it to be
clean — the pass's own acceptance criterion.
"""

import json
import os
import textwrap

import pytest

import repro
from repro.analysis import (
    Project,
    Severity,
    all_rules,
    render_json,
    render_text,
    run_analysis,
)
from repro.analysis.engine import AnalysisError
from repro.cli import main as cli_main

UISR_CLASSES = textwrap.dedent(
    """
    from dataclasses import dataclass

    @dataclass
    class UISRVCpu:
        vcpu: object

    @dataclass
    class UISRPlatform:
        platform: object

    @dataclass
    class UISRVMState:
        version: int
        vm_name: str
        vcpu_count: int
        vcpus: list
        platform: UISRPlatform
    """
)


def analyze(sources, rules=None):
    return run_analysis(Project.from_sources(sources), rule_names=rules)


def by_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


# -- uisr-field-coverage ------------------------------------------------------

class TestUISRFieldCoverage:
    def test_writer_missing_field_flagged(self):
        sources = {
            "core/uisr/format.py": UISR_CLASSES,
            "core/convert/bad.py": textwrap.dedent(
                """
                def to_uisr_test(domain):
                    return UISRVMState(
                        version=1,
                        vm_name=domain.name,
                        vcpus=[],
                        platform=None,
                    )
                """
            ),
        }
        findings, _ = analyze(sources, rules=["uisr-field-coverage"])
        assert len(findings) == 1
        finding = findings[0]
        assert finding.path == "core/convert/bad.py"
        assert finding.line == 3  # the UISRVMState(...) construction
        assert "'vcpu_count'" in finding.message
        assert finding.symbol == "to_uisr_test"

    def test_writer_positional_fields_count(self):
        sources = {
            "core/uisr/format.py": UISR_CLASSES,
            "core/convert/good.py": textwrap.dedent(
                """
                def to_uisr_test(domain):
                    return UISRVMState(1, domain.name, 2, [], None)
                """
            ),
        }
        findings, _ = analyze(sources, rules=["uisr-field-coverage"])
        assert findings == []

    def test_writer_unknown_keyword_flagged(self):
        sources = {
            "core/uisr/format.py": UISR_CLASSES,
            "core/convert/bad.py": textwrap.dedent(
                """
                def to_uisr_test(domain):
                    return UISRVMState(1, domain.name, 2, [], None,
                                       flavor="odd")
                """
            ),
        }
        findings, _ = analyze(sources, rules=["uisr-field-coverage"])
        assert len(findings) == 1
        assert "'flavor'" in findings[0].message

    def test_reader_dropped_field_flagged(self):
        sources = {
            "core/uisr/format.py": UISR_CLASSES,
            "core/convert/bad.py": textwrap.dedent(
                """
                def from_uisr_test(hypervisor, domain, state):
                    use(state.version, state.vm_name, state.vcpu_count)
                    use([r.vcpu for r in state.vcpus])
                    # state.platform never read -> lossy restore
                """
            ),
        }
        findings, _ = analyze(sources, rules=["uisr-field-coverage"])
        assert len(findings) == 2  # dropped field + unwrapped UISRPlatform
        dropped = [f for f in findings if "UISRVMState.platform" in f.message]
        assert len(dropped) == 1
        assert dropped[0].line == 2  # anchored at the def
        unwrapped = [f for f in findings
                     if "UISRPlatform.platform" in f.message]
        assert len(unwrapped) == 1

    def test_reader_helper_call_counts_as_read(self):
        sources = {
            "core/uisr/format.py": UISR_CLASSES,
            "core/convert/good.py": textwrap.dedent(
                """
                def from_uisr_test(hypervisor, domain, state):
                    verify(vm_name=state.vm_name, count=state.vcpu_count,
                           version=state.version)
                    apply([r.vcpu for r in state.vcpus],
                          state.platform.platform)
                """
            ),
        }
        findings, _ = analyze(sources, rules=["uisr-field-coverage"])
        assert findings == []


# -- codec-symmetry -----------------------------------------------------------

CODEC_HEADER = "from repro.hypervisors.state import Packer, Unpacker\n"


class TestCodecSymmetry:
    def test_width_mismatch_flagged(self):
        sources = {
            "hypervisors/test/formats.py": CODEC_HEADER + textwrap.dedent(
                """
                def encode_thing(value):
                    return Packer().u32(value.a).u64(value.b).bytes()

                def decode_thing(payload):
                    unpacker = Unpacker(payload)
                    return unpacker.u32(), unpacker.u32()  # u64 read as u32
                """
            ),
        }
        findings, _ = analyze(sources, rules=["codec-symmetry"])
        assert len(findings) == 1
        finding = findings[0]
        assert finding.path == "hypervisors/test/formats.py"
        assert finding.line == 6  # anchored at the decoder def
        assert "writes [u32 u64] but reads [u32 u32]" in finding.message

    def test_loop_vs_comprehension_symmetric(self):
        sources = {
            "hypervisors/test/formats.py": CODEC_HEADER + textwrap.dedent(
                """
                def encode_table(rows):
                    packer = Packer()
                    packer.u32(len(rows))
                    for row in rows:
                        packer.u64(row)
                    return packer.bytes()

                def decode_table(payload):
                    unpacker = Unpacker(payload)
                    return [unpacker.u64() for _ in range(unpacker.u32())]
                """
            ),
        }
        findings, _ = analyze(sources, rules=["codec-symmetry"])
        assert findings == []

    def test_unpaired_encoder_flagged(self):
        sources = {
            "hypervisors/test/formats.py": CODEC_HEADER + textwrap.dedent(
                """
                def encode_orphan(value):
                    return Packer().u8(value).bytes()
                """
            ),
        }
        findings, _ = analyze(sources, rules=["codec-symmetry"])
        assert len(findings) == 1
        assert "no matching decoder" in findings[0].message
        assert findings[0].line == 3  # header line + leading blank

    def test_helper_inlining(self):
        sources = {
            "hypervisors/test/formats.py": CODEC_HEADER + textwrap.dedent(
                """
                def _put_pair(packer, pair):
                    packer.u64(pair[0]).u64(pair[1])

                def encode_pairs(pairs):
                    packer = Packer()
                    packer.u32(len(pairs))
                    for pair in pairs:
                        _put_pair(packer, pair)
                    return packer.bytes()

                def decode_pairs(payload):
                    unpacker = Unpacker(payload)
                    return [(unpacker.u64(), unpacker.u64())
                            for _ in range(unpacker.u32())]
                """
            ),
        }
        findings, _ = analyze(sources, rules=["codec-symmetry"])
        assert findings == []

    def test_out_of_scope_module_ignored(self):
        sources = {
            "bench/formats.py": CODEC_HEADER + textwrap.dedent(
                """
                def encode_thing(value):
                    return Packer().u32(value).bytes()

                def decode_thing(payload):
                    return Unpacker(payload).u64()
                """
            ),
        }
        findings, _ = analyze(sources, rules=["codec-symmetry"])
        assert findings == []


# -- registry-completeness ----------------------------------------------------

KIND_ENUM = textwrap.dedent(
    """
    import enum

    class HypervisorKind(enum.Enum):
        XEN = "xen"
        KVM = "kvm"
    """
)


class TestRegistryCompleteness:
    def test_missing_member_flagged(self):
        sources = {
            "hypervisors/base.py": KIND_ENUM,
            "core/uisr/registry.py": textwrap.dedent(
                """
                def default_registry():
                    registry = ConverterRegistry()
                    registry.register(HypervisorKind.XEN, to_x, from_x)
                    return registry
                """
            ),
        }
        findings, _ = analyze(sources, rules=["registry-completeness"])
        assert len(findings) == 1
        finding = findings[0]
        assert finding.symbol == "KVM"
        assert finding.path == "core/uisr/registry.py"
        assert finding.line == 4  # anchored at the first register() call

    def test_complete_registry_clean(self):
        sources = {
            "hypervisors/base.py": KIND_ENUM,
            "core/uisr/registry.py": textwrap.dedent(
                """
                def default_registry():
                    registry = ConverterRegistry()
                    registry.register(HypervisorKind.XEN, to_x, from_x)
                    registry.register(HypervisorKind.KVM, to_k, from_k)
                    return registry
                """
            ),
        }
        findings, _ = analyze(sources, rules=["registry-completeness"])
        assert findings == []

    def test_no_registrations_at_all_flagged(self):
        sources = {"hypervisors/base.py": KIND_ENUM}
        findings, _ = analyze(sources, rules=["registry-completeness"])
        assert len(findings) == 1
        assert "empty" in findings[0].message
        assert findings[0].path == "hypervisors/base.py"


# -- sim-clock-hygiene --------------------------------------------------------

class TestSimClockHygiene:
    def test_wall_clock_in_scope_flagged(self):
        sources = {
            "core/transplant.py": textwrap.dedent(
                """
                import time

                def downtime():
                    start = time.time()
                    time.sleep(0.1)
                    return time.time() - start
                """
            ),
        }
        findings, _ = analyze(sources, rules=["sim-clock-hygiene"])
        assert [(f.line, f.message.split("(")[0]) for f in findings] == [
            (5, "time.time"),
            (6, "time.sleep"),
            (7, "time.time"),
        ]

    def test_import_alias_resolved(self):
        sources = {
            "sim/clock.py": "from time import sleep\n\n"
                            "def nap():\n    sleep(1)\n",
        }
        findings, _ = analyze(sources, rules=["sim-clock-hygiene"])
        assert len(findings) == 1
        assert findings[0].line == 4

    def test_out_of_scope_path_ignored(self):
        sources = {
            "bench/runner.py": "import time\n\n"
                               "def stamp():\n    return time.time()\n",
        }
        findings, _ = analyze(sources, rules=["sim-clock-hygiene"])
        assert findings == []

    def test_fleet_package_in_scope(self):
        # The fleet control plane runs entirely on simulated time; a stray
        # wall-clock read there corrupts the measured vulnerability window.
        sources = {
            "fleet/controller.py": "import time\n\n"
                                   "def window():\n    return time.time()\n",
        }
        findings, _ = analyze(sources, rules=["sim-clock-hygiene"])
        assert len(findings) == 1
        assert findings[0].path == "fleet/controller.py"
        assert findings[0].line == 4


# -- exception-hygiene --------------------------------------------------------

class TestExceptionHygiene:
    def test_bare_except_flagged(self):
        sources = {
            "core/anything.py": textwrap.dedent(
                """
                def risky():
                    try:
                        work()
                    except:
                        cleanup()
                """
            ),
        }
        findings, _ = analyze(sources, rules=["exception-hygiene"])
        assert len(findings) == 1
        assert findings[0].line == 5
        assert "bare 'except:'" in findings[0].message

    def test_swallowed_state_error_flagged(self):
        sources = {
            "core/anything.py": textwrap.dedent(
                """
                def risky():
                    try:
                        work()
                    except UISRError:
                        pass
                """
            ),
        }
        findings, _ = analyze(sources, rules=["exception-hygiene"])
        assert len(findings) == 1
        assert "swallows" in findings[0].message

    def test_handled_exception_clean(self):
        sources = {
            "core/anything.py": textwrap.dedent(
                """
                def risky():
                    try:
                        work()
                    except UISRError as error:
                        log(error)
                        raise
                """
            ),
        }
        findings, _ = analyze(sources, rules=["exception-hygiene"])
        assert findings == []

    def test_narrow_pass_allowed(self):
        sources = {
            "core/anything.py": textwrap.dedent(
                """
                def risky():
                    try:
                        work()
                    except KeyError:
                        pass
                """
            ),
        }
        findings, _ = analyze(sources, rules=["exception-hygiene"])
        assert findings == []

    def test_fleet_package_scanned(self):
        # A swallowed Exception in the fleet controller would turn a failed
        # remediation into a silently-vulnerable host.
        sources = {
            "fleet/controller.py": textwrap.dedent(
                """
                def drive():
                    try:
                        transplant()
                    except Exception:
                        pass
                """
            ),
        }
        findings, _ = analyze(sources, rules=["exception-hygiene"])
        assert len(findings) == 1
        assert findings[0].path == "fleet/controller.py"


# -- suppression --------------------------------------------------------------

class TestSuppression:
    BAD_SLEEP = ("import time\n\n"
                 "def nap():\n"
                 "    time.sleep(1){directive}\n")

    def test_same_line_directive(self):
        source = self.BAD_SLEEP.format(
            directive="  # repro-lint: disable=sim-clock-hygiene why not"
        )
        findings, suppressed = analyze({"core/x.py": source},
                                       rules=["sim-clock-hygiene"])
        assert findings == []
        assert suppressed == 1

    def test_line_above_directive(self):
        source = ("import time\n\n"
                  "def nap():\n"
                  "    # repro-lint: disable=sim-clock-hygiene\n"
                  "    time.sleep(1)\n")
        findings, suppressed = analyze({"core/x.py": source},
                                       rules=["sim-clock-hygiene"])
        assert findings == []
        assert suppressed == 1

    def test_other_rule_directive_does_not_suppress(self):
        source = self.BAD_SLEEP.format(
            directive="  # repro-lint: disable=codec-symmetry"
        )
        findings, suppressed = analyze({"core/x.py": source},
                                       rules=["sim-clock-hygiene"])
        assert len(findings) == 1
        assert suppressed == 0

    def test_disable_all(self):
        source = self.BAD_SLEEP.format(
            directive="  # repro-lint: disable=all"
        )
        findings, suppressed = analyze({"core/x.py": source},
                                       rules=["sim-clock-hygiene"])
        assert findings == []
        assert suppressed == 1


# -- engine and reporters -----------------------------------------------------

class TestEngineAndReporters:
    def test_unknown_rule_rejected(self):
        with pytest.raises(AnalysisError, match="unknown rule"):
            analyze({}, rules=["no-such-rule"])

    def test_all_rules_registered(self):
        names = {rule.name for rule in all_rules()}
        assert names == {
            "codec-symmetry",
            "exception-hygiene",
            "frame-protocol-symmetry",
            "io-format-hygiene",
            "journal-hygiene",
            "mechanism-hygiene",
            "par-entrypoint-hygiene",
            "par-payload-hygiene",
            "registry-completeness",
            "sim-clock-hygiene",
            "span-hygiene",
            "state-machine-conformance",
            "sync-lock-order",
            "sync-protocol",
            "trace-format-hygiene",
            "uisr-field-coverage",
        }

    def test_text_reporter(self):
        findings, suppressed = analyze(
            {"core/x.py": "import time\ntime.sleep(1)\n"},
            rules=["sim-clock-hygiene"],
        )
        text = render_text(findings, suppressed)
        assert "core/x.py:2: error: sim-clock-hygiene:" in text
        assert text.endswith("1 finding(s)")

    def test_json_reporter(self):
        findings, suppressed = analyze(
            {"core/x.py": "import time\ntime.sleep(1)\n"},
            rules=["sim-clock-hygiene"],
        )
        payload = json.loads(render_json(findings, suppressed))
        assert payload["clean"] is False
        assert payload["suppressed"] == 0
        (record,) = payload["findings"]
        assert record["rule"] == "sim-clock-hygiene"
        assert record["path"] == "core/x.py"
        assert record["line"] == 2
        assert record["severity"] == Severity.ERROR.value

    def test_findings_sorted_by_location(self):
        findings, _ = analyze(
            {
                "core/b.py": "import time\ntime.sleep(1)\n",
                "core/a.py": "import time\ntime.sleep(1)\ntime.sleep(2)\n",
            },
            rules=["sim-clock-hygiene"],
        )
        assert [(f.path, f.line) for f in findings] == [
            ("core/a.py", 2), ("core/a.py", 3), ("core/b.py", 2),
        ]


# -- the shipped tree must be clean ------------------------------------------

REPRO_ROOT = os.path.dirname(os.path.abspath(repro.__file__))


class TestLiveTree:
    def test_shipped_tree_has_no_findings(self):
        project = Project.from_directory(REPRO_ROOT)
        findings, suppressed = run_analysis(project)
        assert findings == [], render_text(findings, suppressed)
        # exactly the documented suppressions: two Xen LAPIC split-record
        # ones, plus the two wall-clock calls behind repro.par's audited
        # realtime boundary
        assert suppressed == 4

    def test_cli_lint_strict_passes(self, capsys):
        assert cli_main(["lint", "--strict"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_cli_lint_json(self, capsys):
        assert cli_main(["lint", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True

    def test_cli_lint_strict_fails_on_findings(self, tmp_path, capsys):
        bad = tmp_path / "core"
        bad.mkdir()
        (bad / "x.py").write_text("import time\ntime.sleep(1)\n")
        assert cli_main(["lint", "--strict", str(tmp_path)]) == 1
        assert "sim-clock-hygiene" in capsys.readouterr().out

    def test_cli_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "codec-symmetry" in out
        assert "uisr-field-coverage" in out


# -- span-hygiene -------------------------------------------------------------

class TestSpanHygiene:
    def test_span_outside_with_flagged(self):
        findings, _ = analyze(
            {
                "core/x.py": textwrap.dedent(
                    """
                    def work(tracer):
                        cm = tracer.span("phase", "cat")
                        cm.__enter__()
                    """
                ),
            },
            rules=["span-hygiene"],
        )
        assert len(findings) == 1
        assert findings[0].path == "core/x.py"
        assert findings[0].line == 3
        assert "with" in findings[0].message

    def test_with_span_is_clean(self):
        findings, _ = analyze(
            {
                "core/x.py": textwrap.dedent(
                    """
                    def work(tracer):
                        with tracer.span("phase", "cat"):
                            pass
                        with tracer.span("a") as a, tracer.span("b"):
                            pass
                    """
                ),
            },
            rules=["span-hygiene"],
        )
        assert findings == []

    def test_obs_layer_is_exempt(self):
        findings, _ = analyze(
            {"obs/tracer.py": "def f(t):\n    t.span('x')\n"},
            rules=["span-hygiene"],
        )
        assert findings == []


# -- trace-format-hygiene ------------------------------------------------------

class TestTraceFormatHygiene:
    def test_hand_built_event_flagged(self):
        findings, _ = analyze(
            {
                "fleet/x.py": textwrap.dedent(
                    """
                    def export(span):
                        return {"name": span.name, "ph": "X",
                                "ts": span.start_s * 1e6}
                    """
                ),
            },
            rules=["trace-format-hygiene"],
        )
        assert len(findings) == 1
        assert "to_chrome_trace" in findings[0].message

    def test_hand_built_envelope_flagged(self):
        findings, _ = analyze(
            {"cli.py": 'DOC = {"traceEvents": []}\n'},
            rules=["trace-format-hygiene"],
        )
        assert len(findings) == 1

    def test_unrelated_dicts_are_clean(self):
        findings, _ = analyze(
            {
                "fleet/x.py": textwrap.dedent(
                    """
                    A = {"ph": 7.4}
                    B = {"ts": 1, "name": "x"}
                    C = {"hosts": 3, "waves": 2}
                    """
                ),
            },
            rules=["trace-format-hygiene"],
        )
        assert findings == []

    def test_obs_layer_is_exempt(self):
        findings, _ = analyze(
            {"obs/trace.py": 'E = {"ph": "X", "ts": 0}\n'},
            rules=["trace-format-hygiene"],
        )
        assert findings == []


# -- io-format-hygiene --------------------------------------------------------

class TestIOFormatHygiene:
    def test_struct_call_outside_io_flagged(self):
        sources = {
            "core/wire.py": textwrap.dedent(
                """
                import struct

                def frame(payload):
                    return struct.pack("<I", len(payload)) + payload
                """
            ),
        }
        findings, _ = analyze(sources, rules=["io-format-hygiene"])
        assert len(findings) == 1
        assert findings[0].path == "core/wire.py"
        assert findings[0].line == 5
        assert "struct.pack" in findings[0].message

    def test_from_import_alias_resolved(self):
        sources = {
            "hypervisors/xen.py": "from struct import unpack\n\n"
                                  "def parse(blob):\n"
                                  "    return unpack('<Q', blob)\n",
        }
        findings, _ = analyze(sources, rules=["io-format-hygiene"])
        assert len(findings) == 1
        assert findings[0].line == 4

    def test_io_package_is_exempt(self):
        sources = {
            "io/frames.py": "import struct\n\n"
                            "def header(t, n):\n"
                            "    return struct.pack('<IBBI', 1, 1, t, n)\n",
        }
        findings, _ = analyze(sources, rules=["io-format-hygiene"])
        assert findings == []

    def test_unrelated_calls_are_clean(self):
        sources = {
            "core/pram.py": "def encode(parts):\n"
                            "    return b''.join(parts)\n",
        }
        findings, _ = analyze(sources, rules=["io-format-hygiene"])
        assert findings == []


# -- mechanism-hygiene --------------------------------------------------------

class TestMechanismHygiene:
    def test_cost_helper_outside_mechanism_layer_flagged(self):
        sources = {
            "fleet/controller.py": textwrap.dedent(
                """
                def upgrade_time(cost, machine, shapes):
                    return cost.translate_phase_s(machine, shapes)
                """
            ),
        }
        findings, _ = analyze(sources, rules=["mechanism-hygiene"])
        assert len(findings) == 1
        assert findings[0].path == "fleet/controller.py"
        assert "translate_phase_s" in findings[0].message
        assert "StagePlan" in findings[0].message

    def test_plan_precopy_import_alias_resolved(self):
        sources = {
            "cluster/executor.py": textwrap.dedent(
                """
                from repro.core.migration import plan_precopy as precopy

                def migration_time(memory, rate, dirty, cost):
                    return precopy(memory, rate, dirty, cost)
                """
            ),
        }
        findings, _ = analyze(sources, rules=["mechanism-hygiene"])
        assert len(findings) == 1
        assert "plan_precopy" in findings[0].message

    def test_mechanism_layer_is_exempt(self):
        body = textwrap.dedent(
            """
            def build(cost, machine, shapes):
                return cost.restore_phase_s(machine, shapes)
            """
        )
        sources = {path: body for path in (
            "core/pipeline.py", "core/inplace.py",
            "core/migration.py", "core/timings.py",
        )}
        findings, _ = analyze(sources, rules=["mechanism-hygiene"])
        assert findings == []

    def test_stage_plan_consumers_are_clean(self):
        sources = {
            "fleet/controller.py": textwrap.dedent(
                """
                def upgrade_time(pipeline, action):
                    plan = pipeline.plan_host(action.node_name,
                                              action.vm_count,
                                              action.total_memory_bytes)
                    return plan.total_s
                """
            ),
        }
        findings, _ = analyze(sources, rules=["mechanism-hygiene"])
        assert findings == []
