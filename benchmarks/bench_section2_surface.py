"""§2 — the structural case for transplant, quantified.

Not a numbered figure, but the §2.1 analysis the paper builds its premise
on: flaws cluster in implementation-specific interfaces, so moving to a
different hypervisor escapes almost all of them.  Prints per-interface
exposure and the escape fraction for every transplant direction in the
repertoire.
"""

from repro.bench.report import format_table, print_experiment
from repro.vulndb.cve import Severity
from repro.vulndb.data import load_default_database
from repro.vulndb.surface import (
    escape_report,
    per_interface_exposure,
    repertoire_coverage,
)

POOL = ("xen", "kvm", "nova")


def run():
    db = load_default_database()
    rows = []
    for kind in ("xen", "kvm"):
        exposure = per_interface_exposure(db, kind, Severity.CRITICAL)
        for interface, count in exposure.items():
            rows.append([f"{kind} exposure", interface, count, ""])
    for current in POOL:
        for target in POOL:
            if current == target:
                continue
            report = escape_report(db, current, target, Severity.CRITICAL)
            rows.append([
                f"escape {current}->{target}",
                f"shared: {sorted(report.shared)}",
                f"{report.escaped_flaws}/{report.total_flaws}",
                f"{report.escape_fraction:.1%}",
            ])
    coverage = repertoire_coverage(db, POOL)
    for kind, fraction in sorted(coverage.items()):
        rows.append(["repertoire coverage", kind, "", f"{fraction:.1%}"])
    return rows


HEADERS = ["analysis", "detail", "count", "fraction"]


def test_section2_surface(benchmark):
    rows = benchmark(run)
    print_experiment("§2.1", "attack-surface escape analysis",
                     format_table(HEADERS, rows))


if __name__ == "__main__":
    print_experiment("§2.1", "attack-surface escape analysis",
                     format_table(HEADERS, run()))
