"""Tests for the third hypervisor (NOVA) and UISR extensibility."""

import pytest

from repro.errors import StateFormatError
from repro.guest.devices import make_default_platform
from repro.guest.vcpu import make_boot_vcpu
from repro.guest.vm import VMConfig
from repro.hw.machine import M1_SPEC, Machine
from repro.hypervisors import NOVAHypervisor, make_hypervisor
from repro.hypervisors.base import HypervisorKind, HypervisorType
from repro.hypervisors.nova import formats
from repro.hypervisors.nova.hypervisor import NOVA_NPT_POLICY
from repro.sim.clock import SimClock
from repro.core.transplant import HyperTP
from repro.core.uisr.registry import default_registry

GIB = 1024 ** 3


def _nova_host(vm_count=1, vcpus=1, memory_gib=1.0):
    machine = Machine(M1_SPEC)
    nova = NOVAHypervisor()
    nova.boot(machine)
    for i in range(vm_count):
        domain = nova.create_vm(VMConfig(
            f"nvm{i}", vcpus=vcpus, memory_bytes=int(memory_gib * GIB),
            seed=i,
        ))
        domain.vm.platform = make_default_platform(
            vcpus, ioapic_pins=formats.NOVA_IOAPIC_PINS, seed=i,
        )
    return machine


class TestSnapshotFormat:
    def _state(self, vcpus=2, seed=0):
        return ([make_boot_vcpu(i, seed=seed) for i in range(vcpus)],
                make_default_platform(vcpus,
                                      ioapic_pins=formats.NOVA_IOAPIC_PINS,
                                      seed=seed))

    def test_roundtrip(self):
        vcpus, platform = self._state()
        blob = formats.encode_snapshot(vcpus, platform)
        decoded_vcpus, decoded_platform = formats.decode_snapshot(blob)
        assert ([v.architectural_view() for v in decoded_vcpus]
                == [v.architectural_view() for v in vcpus])
        assert decoded_platform.architectural_view() == platform.architectural_view()

    def test_32_pin_requirement(self):
        vcpus, _ = self._state(vcpus=1)
        xen_platform = make_default_platform(1)  # 48 pins
        with pytest.raises(StateFormatError):
            formats.encode_snapshot(vcpus, xen_platform)

    def test_bad_magic_rejected(self):
        vcpus, platform = self._state(vcpus=1)
        blob = bytearray(formats.encode_snapshot(vcpus, platform))
        blob[0] ^= 0xFF
        with pytest.raises(StateFormatError):
            formats.decode_snapshot(bytes(blob))

    def test_format_differs_from_xen_and_kvm(self):
        """Same architectural state, three different wire shapes."""
        from repro.hypervisors.kvm import formats as kf
        from repro.hypervisors.xen import formats as xf
        from repro.guest.devices import KVM_IOAPIC_PINS

        vcpus = [make_boot_vcpu(0)]
        nova_blob = formats.encode_snapshot(
            vcpus, make_default_platform(1, ioapic_pins=32))
        xen_blob = xf.encode_hvm_context(
            vcpus, make_default_platform(1))
        kvm_blob = kf.pack_bundle(kf.encode_bundle(
            vcpus, make_default_platform(1, ioapic_pins=KVM_IOAPIC_PINS)))
        assert len({nova_blob, xen_blob, kvm_blob}) == 3


class TestNOVAHypervisor:
    def test_identity(self):
        assert NOVAHypervisor.kind is HypervisorKind.NOVA
        assert NOVAHypervisor.hv_type is HypervisorType.TYPE_1
        assert NOVAHypervisor.boot_kernel_count == 1
        assert make_hypervisor(HypervisorKind.NOVA).kind is HypervisorKind.NOVA

    def test_smallest_hv_state(self):
        from repro.hypervisors import KVMHypervisor, XenHypervisor

        assert NOVAHypervisor.hv_state_bytes < KVMHypervisor.hv_state_bytes
        assert NOVAHypervisor.hv_state_bytes < XenHypervisor.hv_state_bytes

    def test_npt_policy(self):
        machine = _nova_host()
        domain = next(iter(machine.hypervisor.domains.values()))
        assert domain.npt.policy_tag == NOVA_NPT_POLICY

    def test_scheduler(self):
        machine = _nova_host(vm_count=2, vcpus=3)
        hv = machine.hypervisor
        assert hv.scheduler.queued_vcpus() == 6
        assert hv.scheduler_report()["scheduler"] == "priority-rr"
        hv.rebuild_management_state()
        assert hv.scheduler.queued_vcpus() == 6


class TestRegistryExtensibility:
    def test_default_registry_has_three_kinds(self):
        kinds = default_registry().supported_kinds()
        assert set(kinds) == {HypervisorKind.XEN, HypervisorKind.KVM,
                              HypervisorKind.NOVA}

    def test_xen_to_nova_inplace(self, xen_host_factory):
        machine = xen_host_factory(vm_count=2, vcpus=2)
        vms = [d.vm for d in machine.hypervisor.domains.values()]
        digests = [vm.image.content_digest() for vm in vms]
        original = [[v.architectural_view() for v in vm.vcpus] for vm in vms]
        report = HyperTP().inplace(machine, HypervisorKind.NOVA, SimClock())
        assert machine.hypervisor.kind is HypervisorKind.NOVA
        assert [vm.image.content_digest() for vm in vms] == digests
        assert [[v.architectural_view() for v in vm.vcpus]
                for vm in vms] == original
        # 48-pin Xen IOAPIC shrank to NOVA's 32.
        assert vms[0].platform.ioapic.pin_count == formats.NOVA_IOAPIC_PINS

    def test_nova_to_kvm_inplace(self):
        machine = _nova_host(vm_count=1, vcpus=2)
        vm = next(iter(machine.hypervisor.domains.values())).vm
        digest = vm.image.content_digest()
        HyperTP().inplace(machine, HypervisorKind.KVM, SimClock())
        assert machine.hypervisor.kind is HypervisorKind.KVM
        assert vm.image.content_digest() == digest
        assert vm.platform.ioapic.pin_count == 24

    def test_nova_boot_is_fastest_direction(self, xen_host_factory):
        to_nova = HyperTP().inplace(xen_host_factory(), HypervisorKind.NOVA,
                                    SimClock())
        to_kvm = HyperTP().inplace(xen_host_factory(), HypervisorKind.KVM,
                                   SimClock())
        assert to_nova.reboot_s < to_kvm.reboot_s
        assert to_nova.downtime_s < to_kvm.downtime_s

    def test_full_tour_xen_nova_kvm_xen(self, xen_host_factory):
        """Every hop through the repertoire preserves the guest."""
        machine = xen_host_factory(vm_count=1, vcpus=2)
        vm = next(iter(machine.hypervisor.domains.values())).vm
        digest = vm.image.content_digest()
        hypertp = HyperTP()
        clock = SimClock()
        for target in (HypervisorKind.NOVA, HypervisorKind.KVM,
                       HypervisorKind.XEN):
            hypertp.inplace(machine, target, clock)
        assert machine.hypervisor.kind is HypervisorKind.XEN
        assert vm.image.content_digest() == digest

    def test_migration_tp_to_nova(self, xen_host_factory, fabric):
        from repro.core.migration import MigrationTP

        source = xen_host_factory(name="nsrc")
        destination = Machine(M1_SPEC, name="ndst")
        NOVAHypervisor().boot(destination)
        fabric.connect(source, destination)
        domain = next(iter(source.hypervisor.domains.values()))
        report = MigrationTP(fabric, source, destination).migrate(domain)
        assert report.guest_digest_preserved
        assert report.downtime_s < 0.02  # user-level VMM activation
        assert len(destination.hypervisor.domains) == 1


class TestAdvisorWithThreeHypervisors:
    def test_nova_saves_the_common_flaw_case(self):
        """VENOM hits both Xen and KVM; a QEMU-free microhypervisor in the
        repertoire restores the safe-alternative guarantee."""
        from repro.vulndb import TransplantAdvisor, load_default_database

        db = load_default_database()
        two = TransplantAdvisor(db, hypervisor_pool=("xen", "kvm"))
        assert two.advise("CVE-2015-3456", "xen").recommended_target is None

        three = TransplantAdvisor(db, hypervisor_pool=("xen", "kvm", "nova"))
        advice = three.advise("CVE-2015-3456", "xen")
        assert advice.recommended_target == "nova"
