"""Shared page-record batch encoding with RLE and cross-batch dedup.

Both state-movement paths that carry guest pages — MigrationTP ``PAGES``
wire messages and the PRAM node-page encoding — funnel through this
module, so Fig. 8/9's transferred-bytes and Fig. 14's structure sizes
come from one measured implementation.

Two codecs live here:

* :class:`PageStreamEncoder`/:class:`PageStreamDecoder` — batches of
  ``(gfn, digest)`` records.  Consecutive GFNs are run-length coalesced,
  and the digest table is *stream*-scoped: a page whose content digest
  was already sent in any earlier batch of the same stream is encoded as
  a 4-byte back-reference instead of an 8-byte literal (identical-content
  pages cross the wire once).  :class:`DedupStats` reports the ratio.
* :func:`encode_entry_records`/:func:`decode_entry_records` — PRAM page
  entries ``(gfn, mfn, order)``.  Contiguous entries (gfn+1, mfn+1, same
  order — what huge-page expansion produces) coalesce into runs; the
  encoding is self-describing and deterministically picks raw 8-byte
  packed entries whenever runs would be larger.
"""

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import StateFormatError
from repro.io.frames import Packer, StreamMeter, Unpacker

#: bytes one (gfn, digest) record costs un-encoded (two u64s) — the
#: baseline :attr:`DedupStats.ratio` measures against.
LOGICAL_RECORD_BYTES = 16

_LITERAL = 0
_REF = 1

# 64-bit packed page-entry layout (gfn:28, mfn:30, order:6) — covers
# 1 TiB hosts with 2 MB chunks.  Single source of truth; core.pram
# re-exports the pack/unpack pair.
ENTRY_GFN_BITS = 28
ENTRY_MFN_BITS = 30
ENTRY_ORDER_BITS = 6

_ENTRY_RAW = 0
_ENTRY_RUNS = 1


def pack_entry_record(gfn: int, mfn: int, order: int) -> int:
    if (gfn >= (1 << ENTRY_GFN_BITS) or mfn >= (1 << ENTRY_MFN_BITS)
            or order >= (1 << ENTRY_ORDER_BITS)):
        raise StateFormatError(
            f"page entry out of range: gfn={gfn} mfn={mfn} order={order}"
        )
    return ((gfn << (ENTRY_MFN_BITS + ENTRY_ORDER_BITS))
            | (mfn << ENTRY_ORDER_BITS) | order)


def unpack_entry_record(packed: int) -> Tuple[int, int, int]:
    order = packed & ((1 << ENTRY_ORDER_BITS) - 1)
    mfn = (packed >> ENTRY_ORDER_BITS) & ((1 << ENTRY_MFN_BITS) - 1)
    gfn = packed >> (ENTRY_MFN_BITS + ENTRY_ORDER_BITS)
    return gfn, mfn, order


@dataclass
class DedupStats:
    """What one page stream cost, and what dedup saved."""

    pages: int = 0
    batches: int = 0
    unique_digests: int = 0
    dedup_hits: int = 0
    logical_bytes: int = 0
    encoded_bytes: int = 0

    @property
    def ratio(self) -> float:
        """Logical-to-encoded size ratio (> 1.0 means dedup/RLE won)."""
        if not self.encoded_bytes:
            return 1.0
        return self.logical_bytes / self.encoded_bytes

    def as_dict(self) -> Dict[str, object]:
        return {
            "pages": self.pages,
            "batches": self.batches,
            "unique_digests": self.unique_digests,
            "dedup_hits": self.dedup_hits,
            "logical_bytes": self.logical_bytes,
            "encoded_bytes": self.encoded_bytes,
            "ratio": round(self.ratio, 6),
        }


def _gfn_runs(gfns: List[int]) -> List[Tuple[int, int]]:
    """Coalesce an ordered GFN list into (start, length) runs."""
    runs: List[Tuple[int, int]] = []
    for gfn in gfns:
        if runs and runs[-1][0] + runs[-1][1] == gfn:
            runs[-1] = (runs[-1][0], runs[-1][1] + 1)
        else:
            runs.append((gfn, 1))
    return runs


class PageStreamEncoder:
    """Encodes (gfn, digest) batches with a stream-scoped digest table."""

    def __init__(self, meter: Optional[StreamMeter] = None):
        self._digest_refs: Dict[int, int] = {}
        self._meter = meter
        self.stats = DedupStats()

    def encode_batch(self, pages: Iterable[Tuple[int, int]]) -> bytes:
        pages = list(pages)
        runs = _gfn_runs([gfn for gfn, _ in pages])
        packer = Packer()
        packer.u32(len(pages))
        packer.u32(len(runs))
        for start, length in runs:
            packer.u64(start).u32(length)
        for _, digest in pages:
            ref = self._digest_refs.get(digest)
            if ref is None:
                self._digest_refs[digest] = len(self._digest_refs)
                packer.u8(_LITERAL).u64(digest)
            else:
                packer.u8(_REF).u32(ref)
                self.stats.dedup_hits += 1
                if self._meter is not None:
                    self._meter.count_dedup(1)
        encoded = packer.bytes()
        self.stats.pages += len(pages)
        self.stats.batches += 1
        self.stats.unique_digests = len(self._digest_refs)
        self.stats.logical_bytes += len(pages) * LOGICAL_RECORD_BYTES
        self.stats.encoded_bytes += len(encoded)
        return encoded


class PageStreamDecoder:
    """Decodes batches produced by one :class:`PageStreamEncoder`.

    The digest table accumulates across batches exactly as the encoder's
    did, so back-references resolve; a reference into an index the stream
    never defined fails loudly.
    """

    def __init__(self):
        self._digests: List[int] = []

    def decode_batch(self, payload: bytes) -> List[Tuple[int, int]]:
        unpacker = Unpacker(payload)
        count = unpacker.u32()
        run_count = unpacker.u32()
        gfns: List[int] = []
        for _ in range(run_count):
            start = unpacker.u64()
            length = unpacker.u32()
            gfns.extend(range(start, start + length))
        if len(gfns) != count:
            raise StateFormatError(
                f"page batch runs cover {len(gfns)} pages, header says {count}"
            )
        pages: List[Tuple[int, int]] = []
        for gfn in gfns:
            tag = unpacker.u8()
            if tag == _LITERAL:
                digest = unpacker.u64()
                self._digests.append(digest)
            elif tag == _REF:
                ref = unpacker.u32()
                if ref >= len(self._digests):
                    raise StateFormatError(
                        f"page batch references undefined digest #{ref} "
                        f"(stream has {len(self._digests)})"
                    )
                digest = self._digests[ref]
            else:
                raise StateFormatError(f"unknown page record tag {tag}")
            pages.append((gfn, digest))
        unpacker.expect_end()
        return pages


def _entry_runs(
    records: List[Tuple[int, int, int]]
) -> List[Tuple[int, int, int, int]]:
    """Coalesce contiguous entries into (gfn, mfn, order, count) runs."""
    runs: List[Tuple[int, int, int, int]] = []
    for gfn, mfn, order in records:
        if runs:
            rg, rm, ro, rc = runs[-1]
            if ro == order and rg + rc == gfn and rm + rc == mfn:
                runs[-1] = (rg, rm, ro, rc + 1)
                continue
        runs.append((gfn, mfn, order, 1))
    return runs


def encode_entry_records(records: Iterable[Tuple[int, int, int]]) -> bytes:
    """Encode PRAM page entries, run-coalesced when that is smaller."""
    records = list(records)
    runs = _entry_runs(records)
    raw_size = 1 + 4 + 8 * len(records)
    runs_size = 1 + 4 + 21 * len(runs)
    packer = Packer()
    if runs_size < raw_size:
        packer.u8(_ENTRY_RUNS).u32(len(runs))
        for gfn, mfn, order, count in runs:
            packer.u64(gfn).u64(mfn).u8(order).u32(count)
    else:
        packer.u8(_ENTRY_RAW).u32(len(records))
        for gfn, mfn, order in records:
            packer.u64(pack_entry_record(gfn, mfn, order))
    return packer.bytes()


def decode_entry_records(blob: bytes) -> List[Tuple[int, int, int]]:
    """Decode PRAM page entries back to (gfn, mfn, order) tuples."""
    unpacker = Unpacker(blob)
    mode = unpacker.u8()
    records: List[Tuple[int, int, int]] = []
    if mode == _ENTRY_RUNS:
        for _ in range(unpacker.u32()):
            gfn = unpacker.u64()
            mfn = unpacker.u64()
            order = unpacker.u8()
            count = unpacker.u32()
            records.extend((gfn + i, mfn + i, order) for i in range(count))
    elif mode == _ENTRY_RAW:
        count = unpacker.u32()
        if count * 8 > unpacker.remaining:
            raise StateFormatError(
                f"truncated entry records: {count} entries need "
                f"{count * 8} bytes, have {unpacker.remaining}"
            )
        records.extend(
            unpack_entry_record(unpacker.u64()) for _ in range(count)
        )
    else:
        raise StateFormatError(f"unknown entry-record encoding {mode}")
    unpacker.expect_end()
    return records
