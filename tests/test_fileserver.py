"""Tests for the file-server workload over remote storage."""

import pytest

from repro.errors import ReproError
from repro.hw.machine import M1_SPEC
from repro.hypervisors.base import HypervisorKind
from repro.sim.clock import SimClock
from repro.bench.runner import make_xen_host
from repro.core.transplant import HyperTP
from repro.storage import RemoteBlockStore, StorageManager
from repro.workloads.base import HostTimeline
from repro.workloads.fileserver import FileServerWorkload
from repro.workloads.generator import timeline_for_inplace

MIB = 1 << 20
XEN = HypervisorKind.XEN
KVM = HypervisorKind.KVM


@pytest.fixture
def served_vm():
    store = RemoteBlockStore()
    store.create_volume("data", 64 * MIB)
    machine = make_xen_host(M1_SPEC, vm_count=1, vcpus=2, memory_gib=2.0)
    vm = next(iter(machine.hypervisor.domains.values())).vm
    driver = StorageManager(store).attach(vm, "data")
    return machine, vm, driver


class TestServe:
    def test_quiet_run_verifies(self, served_vm):
        _, _, driver = served_vm
        workload = FileServerWorkload(driver)
        trace = workload.serve(30.0, HostTimeline(switches=[(0.0, XEN)]))
        assert trace.reads > 0 and trace.writes > 0
        assert trace.stalled_seconds == 0.0
        assert trace.verified_ok

    def test_outage_stalls_io(self, served_vm):
        _, _, driver = served_vm
        workload = FileServerWorkload(driver)
        timeline = HostTimeline(switches=[(0.0, XEN)],
                                network_down=[(10.0, 15.0)])
        trace = workload.serve(30.0, timeline)
        assert trace.stalled_seconds == pytest.approx(5.0, abs=0.6)
        assert trace.verified_ok

    def test_bad_write_fraction_rejected(self, served_vm):
        _, _, driver = served_vm
        with pytest.raises(ReproError):
            FileServerWorkload(driver, write_fraction=1.5)


class TestAcrossTransplant:
    def test_data_written_before_survives_transplant(self, served_vm):
        """End-to-end §4.1 story: a file server's data written on Xen is
        read back verified on KVM, with only the transplant-window stall."""
        machine, vm, driver = served_vm
        report = HyperTP().inplace(machine, KVM, SimClock())
        timeline = timeline_for_inplace(report, 30.0, XEN, KVM)
        workload = FileServerWorkload(driver)
        series, trace = workload.run_with_io(120.0, timeline)
        assert trace.verified_ok
        # Stall spans the downtime+NIC window, nothing more.
        assert trace.stalled_seconds == pytest.approx(
            max(report.downtime_s,
                report.translation_s + report.reboot_s + report.network_s),
            abs=1.5,
        )
        # IOPS recover to the KVM baseline after the window.
        assert series.mean_between(60, 120) == pytest.approx(
            workload.baseline(KVM), rel=0.05,
        )
