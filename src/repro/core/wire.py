"""MigrationTP wire protocol.

The byte format that travels between the source and destination proxies
during a (heterogeneous) live migration: a negotiation header, one message
per pre-copy round carrying page batches, the UISR document for the VM_i
State, and a completion handshake with an end-to-end digest.

Guest page *contents* are represented by their digests (as everywhere in
the simulation); the protocol itself is byte-exact, so malformed or
reordered streams fail loudly, and the destination reconstructs the guest
image purely from what arrived on the wire — the digest check at the end is
a real end-to-end property, not bookkeeping.
"""

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import MigrationError, StateFormatError
from repro.hypervisors.state import Packer, Unpacker

WIRE_MAGIC = 0x48545031  # "HTP1"
WIRE_VERSION = 1


class MessageType(enum.Enum):
    HELLO = 1
    ROUND = 2
    PAGES = 3
    UISR = 4
    DONE = 5


@dataclass(frozen=True)
class Hello:
    """Stream negotiation: who is sending what to whom."""

    vm_name: str
    source_hypervisor: str
    target_hypervisor: str
    vcpus: int
    memory_bytes: int
    page_size: int


@dataclass(frozen=True)
class RoundHeader:
    """Start of one pre-copy round (round 0 = stop-and-copy)."""

    index: int
    page_count: int


@dataclass(frozen=True)
class PageBatch:
    """A batch of (gfn, digest) page records within the current round."""

    pages: Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class UISRPayload:
    """The encoded UISR document for the VM_i State."""

    blob: bytes


@dataclass(frozen=True)
class Done:
    """End of stream: the source's final whole-image digest."""

    final_digest: int


Message = object  # union of the dataclasses above

MAX_BATCH_PAGES = 1024


def _frame(msg_type: MessageType, payload: bytes) -> bytes:
    packer = Packer()
    packer.u32(WIRE_MAGIC).u8(msg_type.value)
    packer.u32(len(payload)).raw(payload)
    return packer.bytes()


def encode_message(message: Message) -> bytes:
    """Serialize one protocol message to its wire frame."""
    packer = Packer()
    if isinstance(message, Hello):
        name = message.vm_name.encode()
        packer.u32(WIRE_VERSION)
        packer.u16(len(name)).raw(name)
        src = message.source_hypervisor.encode()
        dst = message.target_hypervisor.encode()
        packer.u8(len(src)).raw(src)
        packer.u8(len(dst)).raw(dst)
        packer.u32(message.vcpus)
        packer.u64(message.memory_bytes)
        packer.u32(message.page_size)
        return _frame(MessageType.HELLO, packer.bytes())
    if isinstance(message, RoundHeader):
        packer.u32(message.index).u64(message.page_count)
        return _frame(MessageType.ROUND, packer.bytes())
    if isinstance(message, PageBatch):
        if len(message.pages) > MAX_BATCH_PAGES:
            raise MigrationError(
                f"page batch too large: {len(message.pages)}"
            )
        packer.u32(len(message.pages))
        for gfn, digest in message.pages:
            packer.u64(gfn).u64(digest)
        return _frame(MessageType.PAGES, packer.bytes())
    if isinstance(message, UISRPayload):
        packer.u32(len(message.blob)).raw(message.blob)
        return _frame(MessageType.UISR, packer.bytes())
    if isinstance(message, Done):
        packer.u64(message.final_digest)
        return _frame(MessageType.DONE, packer.bytes())
    raise MigrationError(f"unknown wire message {type(message).__name__}")


def decode_message(frame: bytes) -> Tuple[Message, int]:
    """Parse one frame; returns (message, bytes consumed)."""
    unpacker = Unpacker(frame)
    magic = unpacker.u32()
    if magic != WIRE_MAGIC:
        raise StateFormatError(f"bad wire magic {magic:#x}")
    try:
        msg_type = MessageType(unpacker.u8())
    except ValueError as exc:
        raise StateFormatError(f"unknown wire message type: {exc}") from exc
    payload = unpacker.raw(unpacker.u32())
    consumed = len(frame) - unpacker.remaining
    body = Unpacker(payload)

    if msg_type is MessageType.HELLO:
        version = body.u32()
        if version != WIRE_VERSION:
            raise StateFormatError(f"unsupported wire version {version}")
        vm_name = body.raw(body.u16()).decode()
        src = body.raw(body.u8()).decode()
        dst = body.raw(body.u8()).decode()
        message = Hello(
            vm_name=vm_name, source_hypervisor=src, target_hypervisor=dst,
            vcpus=body.u32(), memory_bytes=body.u64(), page_size=body.u32(),
        )
    elif msg_type is MessageType.ROUND:
        message = RoundHeader(index=body.u32(), page_count=body.u64())
    elif msg_type is MessageType.PAGES:
        count = body.u32()
        pages = tuple((body.u64(), body.u64()) for _ in range(count))
        message = PageBatch(pages=pages)
    elif msg_type is MessageType.UISR:
        message = UISRPayload(blob=body.raw(body.u32()))
    else:
        message = Done(final_digest=body.u64())
    body.expect_end()
    return message, consumed


class MigrationStream:
    """An in-order, in-memory message channel between the two proxies."""

    def __init__(self):
        self._buffer = bytearray()
        self.bytes_sent = 0
        self.messages_sent = 0

    def send(self, message: Message) -> int:
        frame = encode_message(message)
        self._buffer.extend(frame)
        self.bytes_sent += len(frame)
        self.messages_sent += 1
        return len(frame)

    def receive_all(self) -> Iterator[Message]:
        """Drain and decode every buffered message, in order."""
        view = bytes(self._buffer)
        self._buffer.clear()
        offset = 0
        while offset < len(view):
            message, consumed = decode_message(view[offset:])
            offset += consumed
            yield message


def send_pages(stream: MigrationStream, round_index: int,
               pages: List[Tuple[int, int]]) -> None:
    """Send one round: header followed by bounded batches."""
    stream.send(RoundHeader(index=round_index, page_count=len(pages)))
    for start in range(0, len(pages), MAX_BATCH_PAGES):
        stream.send(PageBatch(pages=tuple(pages[start:start + MAX_BATCH_PAGES])))


class StreamReceiver:
    """Destination-side protocol state machine.

    Applies messages in order and accumulates the reconstructed guest image
    as a GFN -> digest map; ``finish`` verifies the end-to-end digest.
    """

    def __init__(self):
        self.hello: Optional[Hello] = None
        self.page_digests: Dict[int, int] = {}
        self.uisr_blob: Optional[bytes] = None
        self.rounds_seen: List[int] = []
        self._expected_in_round = 0
        self._received_in_round = 0
        self.done: Optional[Done] = None

    def feed(self, message: Message) -> None:
        if isinstance(message, Hello):
            if self.hello is not None:
                raise MigrationError("duplicate HELLO on migration stream")
            self.hello = message
            return
        if self.hello is None:
            raise MigrationError("migration stream did not start with HELLO")
        if self.done is not None:
            raise MigrationError("message after DONE on migration stream")
        if isinstance(message, RoundHeader):
            if self._received_in_round != self._expected_in_round:
                raise MigrationError(
                    f"round {self.rounds_seen[-1]} truncated: "
                    f"{self._received_in_round}/{self._expected_in_round} pages"
                )
            self.rounds_seen.append(message.index)
            self._expected_in_round = message.page_count
            self._received_in_round = 0
            return
        if isinstance(message, PageBatch):
            if not self.rounds_seen:
                raise MigrationError("PAGES before any ROUND header")
            for gfn, digest in message.pages:
                self.page_digests[gfn] = digest
            self._received_in_round += len(message.pages)
            if self._received_in_round > self._expected_in_round:
                raise MigrationError("round overflow: too many pages")
            return
        if isinstance(message, UISRPayload):
            self.uisr_blob = message.blob
            return
        if isinstance(message, Done):
            if self._received_in_round != self._expected_in_round:
                raise MigrationError("DONE while a round is incomplete")
            self.done = message
            return
        raise MigrationError(f"unexpected message {type(message).__name__}")

    def finish(self, computed_digest: int) -> None:
        """Verify completeness and the end-to-end image digest."""
        if self.hello is None or self.done is None:
            raise MigrationError("migration stream incomplete")
        if self.uisr_blob is None:
            raise MigrationError("migration stream carried no UISR payload")
        expected_pages = self.hello.memory_bytes // self.hello.page_size
        if len(self.page_digests) != expected_pages:
            raise MigrationError(
                f"stream delivered {len(self.page_digests)} distinct pages, "
                f"guest has {expected_pages}"
            )
        if computed_digest != self.done.final_digest:
            raise MigrationError(
                "end-to-end digest mismatch after migration"
            )
