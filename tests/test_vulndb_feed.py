"""Tests for the NVD-style JSON feed import/export."""

import json

import pytest

from repro.errors import VulnDBError
from repro.vulndb.cve import CVERecord
from repro.vulndb.data import VulnerabilityDatabase, load_default_database
from repro.vulndb.feed import (
    export_feed,
    import_feed,
    merge_feeds,
    record_from_dict,
    record_to_dict,
)
from repro.vulndb.analysis import yearly_counts


class TestRoundtrip:
    def test_default_database_roundtrips(self):
        db = load_default_database()
        restored = import_feed(export_feed(db))
        assert len(restored) == len(db)
        assert ([r.cve_id for r in restored.all()]
                == [r.cve_id for r in db.all()])
        # Table 1 regenerates identically from the re-imported feed.
        assert yearly_counts(restored) == yearly_counts(db)

    def test_export_import_export_byte_identical(self):
        # The full determinism loop: exported bytes survive a round trip
        # exactly, so feeds can be diffed and content-addressed.
        first = export_feed(load_default_database())
        second = export_feed(import_feed(first))
        assert second == first

    def test_record_dict_roundtrip_with_vector(self):
        record = CVERecord(
            cve_id="CVE-2020-0001", year=2020,
            affected=frozenset({"xen", "kvm"}), component="qemu",
            cvss_vector="AV:N/AC:L/Au:N/C:C/I:C/A:C",
            description="test", days_to_patch=12,
        )
        restored = record_from_dict(record_to_dict(record))
        assert restored == record
        assert restored.score == 10.0


class TestValidation:
    def test_not_json(self):
        with pytest.raises(VulnDBError, match="valid JSON"):
            import_feed("{nope")

    def test_wrong_envelope(self):
        with pytest.raises(VulnDBError, match="must be a JSON object"):
            import_feed("[]")
        with pytest.raises(VulnDBError, match="format"):
            import_feed(json.dumps({"format": "other", "version": 1,
                                    "entries": []}))
        with pytest.raises(VulnDBError, match="version"):
            import_feed(json.dumps({"format": "hypertp-vulnfeed",
                                    "version": 99, "entries": []}))
        with pytest.raises(VulnDBError, match="entries"):
            import_feed(json.dumps({"format": "hypertp-vulnfeed",
                                    "version": 1, "entries": "x"}))

    def test_missing_fields(self):
        with pytest.raises(VulnDBError, match="missing field"):
            record_from_dict({"id": "CVE-1-1"})

    def test_score_required(self):
        entry = {"id": "CVE-1-1", "year": 2020, "affected": ["xen"],
                 "component": "pv"}
        with pytest.raises(VulnDBError):
            record_from_dict(entry)


class TestMerge:
    def _mini_db(self, cve_id, score):
        return VulnerabilityDatabase([CVERecord(
            cve_id=cve_id, year=2021, affected=frozenset({"xen"}),
            component="pv", cvss_score=score,
        )])

    def test_merge_unions(self):
        merged = merge_feeds(self._mini_db("CVE-A", 8.0),
                             self._mini_db("CVE-B", 5.0))
        assert len(merged) == 2

    def test_later_feed_wins_on_clash(self):
        merged = merge_feeds(self._mini_db("CVE-A", 8.0),
                             self._mini_db("CVE-A", 4.0))
        assert len(merged) == 1
        assert merged.get("CVE-A").score == 4.0

    def test_merge_is_order_independent_without_clashes(self):
        # Disjoint feeds merge to the same database — and the same
        # exported bytes — in any order.
        a = self._mini_db("CVE-A", 8.0)
        b = self._mini_db("CVE-B", 5.0)
        c = self._mini_db("CVE-C", 9.1)
        assert export_feed(merge_feeds(a, b, c)) == \
            export_feed(merge_feeds(c, a, b)) == \
            export_feed(merge_feeds(b, c, a))

    def test_merged_order_is_sorted_by_id(self):
        merged = merge_feeds(self._mini_db("CVE-Z", 8.0),
                             self._mini_db("CVE-A", 5.0))
        assert [r.cve_id for r in merged.all()] == ["CVE-A", "CVE-Z"]

    def test_operator_feed_extends_default(self):
        db = load_default_database()
        fresh = VulnerabilityDatabase([CVERecord(
            cve_id="CVE-2026-1234", year=2026,
            affected=frozenset({"kvm"}), component="ioctl",
            cvss_score=9.8, description="hot new flaw",
        )])
        merged = merge_feeds(db, fresh)
        assert merged.get("CVE-2026-1234").severity.value == "critical"
        # The advisor consumes merged feeds directly.
        from repro.vulndb.advisor import TransplantAdvisor

        advice = TransplantAdvisor(merged).advise("CVE-2026-1234", "kvm")
        assert advice.recommended_target == "xen"
