"""Spawn-based worker pool whose task protocol rides ``repro.io`` frames.

Workers are fresh Python interpreters (``python -c ... worker_main()``)
joined to the parent by plain OS pipes; every task and result crosses
those pipes inside the same CRC-checked, END-terminated frames that carry
migration state (:mod:`repro.io.frames`) — a corrupted byte anywhere on
the channel fails loudly with the absolute offset and frame tag instead
of deserializing into a silently-wrong result.

Protocol, parent's view::

    parent -> worker   TASK_FRAME    pickle((task_id, "module:func", payload))
    worker -> parent   RESULT_FRAME  pickle((task_id, value))
    worker -> parent   ERROR_FRAME   pickle((task_id, traceback_text))
    parent -> worker   END frame     clean shutdown; worker exits 0

Robustness (the ReHype lesson applied to the pool itself): every task has
a deadline, a worker that dies mid-task (EOF / broken pipe / frame error)
or hangs past its deadline is killed and respawned, its task is retried a
bounded number of times with backoff, and a task that exhausts retries
falls back to running *inline* in the parent — so ``workers=1`` and any
amount of worker loss reproduce the serial path exactly, they just stop
being fast.

Entry points must be module-level functions (:func:`func_ref` refuses
lambdas, closures and bound methods — the ``par-entrypoint-hygiene`` lint
rule flags them statically) and payloads must be plain picklable data
with no live simulation objects captured inside (:func:`check_payload`,
``par-payload-hygiene``).
"""

import importlib
import os
import pickle
import select
import subprocess
import sys
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.errors import ParError, StateFormatError
from repro.io.frames import END_FRAME, encode_frame, read_stream_frame
from repro.par import realtime

#: parent -> worker: one task assignment.
TASK_FRAME = 0x21
#: worker -> parent: the task's pickled return value.
RESULT_FRAME = 0x22
#: worker -> parent: the task raised; payload carries the traceback text.
ERROR_FRAME = 0x23

#: types that must never ride inside a task payload: they carry live
#: simulation state (clocks, engines, open traces) that cannot survive a
#: process boundary and would silently desynchronize the run.
_FORBIDDEN_PAYLOAD_TYPES = (
    ("repro.sim.clock", "SimClock"),
    ("repro.sim.engine", "Engine"),
    ("repro.obs.tracer", "Tracer"),
)


# -- task model ---------------------------------------------------------------


@dataclass(frozen=True)
class Task:
    """One unit of work: a module-level entrypoint plus its payload."""

    func: str
    payload: Any = None
    label: str = ""
    #: per-task deadline override (None = the pool's default)
    timeout_s: Optional[float] = None


def func_ref(fn: Union[str, Callable]) -> str:
    """The importable ``"module:function"`` reference of an entrypoint.

    Worker processes import the function fresh, so only module-level
    functions qualify: lambdas, nested functions and bound methods are
    rejected here (and flagged statically by ``par-entrypoint-hygiene``).
    Functions defined in a ``__main__`` script resolve to the script's
    module name so workers can import it off ``sys.path``.
    """
    if isinstance(fn, str):
        module, sep, name = fn.partition(":")
        if not sep or not module or not name:
            raise ParError(
                f"bad entrypoint reference {fn!r}: want 'module:function'"
            )
        return fn
    qualname = getattr(fn, "__qualname__", None)
    module = getattr(fn, "__module__", None)
    if not callable(fn) or qualname is None or module is None:
        raise ParError(f"entrypoint {fn!r} is not a referable function")
    if "<lambda>" in qualname or "<locals>" in qualname:
        raise ParError(
            f"entrypoint {qualname!r} is a lambda or nested function; "
            f"workers import entrypoints by name, so they must be "
            f"module-level"
        )
    if "." in qualname:
        raise ParError(
            f"entrypoint {qualname!r} is a method; workers import "
            f"entrypoints by name, so they must be module-level functions"
        )
    if module == "__main__":
        main_file = getattr(sys.modules.get("__main__"), "__file__", None)
        if main_file is None:
            raise ParError(
                f"entrypoint {qualname!r} lives in an interactive "
                f"__main__; move it into an importable module"
            )
        directory = os.path.dirname(os.path.abspath(main_file))
        module = os.path.splitext(os.path.basename(main_file))[0]
        if directory not in sys.path:
            sys.path.insert(0, directory)
    return f"{module}:{qualname}"


def resolve_ref(ref: str) -> Callable:
    """Import and return the function a ``"module:function"`` ref names."""
    module_name, sep, func_name = ref.partition(":")
    if not sep:
        raise ParError(f"bad entrypoint reference {ref!r}")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ParError(f"cannot import entrypoint module {module_name!r}: "
                       f"{exc}") from exc
    fn = getattr(module, func_name, None)
    if not callable(fn):
        raise ParError(
            f"entrypoint {ref!r} does not name a callable in "
            f"{module_name!r}"
        )
    return fn


def check_payload(payload: Any, _context: str = "payload") -> None:
    """Reject payloads that capture live simulation objects.

    Walks plain containers (dict/list/tuple/set); anything carrying a
    ``SimClock``, ``Engine`` or live ``Tracer`` is refused — those objects
    hold per-process state (event queues, open spans, bound clocks) that a
    spawn boundary would quietly reset, making the shard diverge from the
    serial run instead of failing loudly.
    """
    forbidden = []
    for module_name, type_name in _FORBIDDEN_PAYLOAD_TYPES:
        module = sys.modules.get(module_name)
        cls = getattr(module, type_name, None) if module else None
        if cls is not None:
            forbidden.append(cls)
    if forbidden:
        _walk_payload(payload, tuple(forbidden), _context, depth=0)


def _walk_payload(value, forbidden, context, depth) -> None:
    if depth > 16:
        return
    if isinstance(value, forbidden):
        raise ParError(
            f"task {context} captures a live {type(value).__name__}; "
            f"workers must build their own clocks/tracers from seeds"
        )
    if isinstance(value, dict):
        for key, sub in value.items():
            _walk_payload(key, forbidden, context, depth + 1)
            _walk_payload(sub, forbidden, f"{context}[{key!r}]", depth + 1)
    elif isinstance(value, (list, tuple, set, frozenset)):
        for index, sub in enumerate(value):
            _walk_payload(sub, forbidden, f"{context}[{index}]", depth + 1)


# -- worker side --------------------------------------------------------------


def worker_main(stdin=None, stdout=None) -> int:
    """Worker loop: read TASK frames, run them, write RESULT/ERROR frames.

    Runs in a fresh interpreter with the frame channel on stdin/stdout.
    ``sys.stdout`` is rebound to stderr for the task's duration so a
    stray ``print()`` inside an entrypoint cannot corrupt the frame
    stream.  The loop ends at the parent's END frame (exit 0); a frame
    error on stdin is a protocol failure (exit 2).
    """
    channel_in = stdin if stdin is not None else sys.stdin.buffer
    channel_out = stdout if stdout is not None else sys.stdout.buffer
    sys.stdout = sys.stderr
    offset = 0
    while True:
        try:
            frame_type, payload, consumed = read_stream_frame(
                channel_in, offset)
        except StateFormatError as exc:
            print(f"par worker: {exc}", file=sys.stderr)
            return 2
        offset += consumed
        if frame_type == END_FRAME:
            return 0
        if frame_type != TASK_FRAME:
            print(f"par worker: unexpected frame type {frame_type}",
                  file=sys.stderr)
            return 2
        task_id, ref, task_payload = pickle.loads(payload)
        try:
            value = resolve_ref(ref)(task_payload)
            reply = encode_frame(RESULT_FRAME,
                                 pickle.dumps((task_id, value)))
        except Exception:
            reply = encode_frame(
                ERROR_FRAME,
                pickle.dumps((task_id, traceback.format_exc())),
            )
        channel_out.write(reply)
        channel_out.flush()


_WORKER_BOOT = "from repro.par.pool import worker_main; " \
               "raise SystemExit(worker_main())"


def _worker_environment() -> Dict[str, str]:
    """The spawned worker's env: parent's sys.path via PYTHONPATH, so
    entrypoints living next to scripts (benchmarks/) import cleanly."""
    env = dict(os.environ)
    entries = [entry for entry in sys.path if entry]
    if entries:
        env["PYTHONPATH"] = os.pathsep.join(entries)
    return env


# -- parent side --------------------------------------------------------------


@dataclass
class PoolStats:
    """Operational counters of one pool run (wall-clock-free)."""

    workers: int = 0
    tasks: int = 0
    results: int = 0
    retries: int = 0
    worker_crashes: int = 0
    timeouts: int = 0
    inline_fallbacks: int = 0
    respawns: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "workers": self.workers,
            "tasks": self.tasks,
            "results": self.results,
            "retries": self.retries,
            "worker_crashes": self.worker_crashes,
            "timeouts": self.timeouts,
            "inline_fallbacks": self.inline_fallbacks,
            "respawns": self.respawns,
        }


class _Worker:
    """One spawned interpreter plus its channel bookkeeping."""

    def __init__(self, index: int, env: Dict[str, str]):
        self.index = index
        # bufsize=0: select() must see exactly what the OS pipe holds —
        # a Python-level read buffer would hide ready frames from it.
        self.proc = subprocess.Popen(
            [sys.executable, "-c", _WORKER_BOOT],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            bufsize=0, env=env,
        )
        self.task_index: Optional[int] = None
        self.deadline: float = 0.0
        self.sent_offset = 0
        self.recv_offset = 0

    @property
    def busy(self) -> bool:
        return self.task_index is not None

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
        try:
            self.proc.wait(timeout=5)
        except subprocess.TimeoutExpired:
            pass
        self._close_pipes()

    def shutdown(self) -> None:
        """Polite exit: END frame, then wait; kill if it lingers."""
        try:
            self.proc.stdin.write(encode_frame(END_FRAME, b""))
            self.proc.stdin.flush()
            self.proc.stdin.close()
        except (BrokenPipeError, OSError, ValueError):
            pass
        try:
            self.proc.wait(timeout=5)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait()
        self._close_pipes()

    def _close_pipes(self) -> None:
        for stream in (self.proc.stdin, self.proc.stdout):
            if stream is not None and not stream.closed:
                try:
                    stream.close()
                except (BrokenPipeError, OSError):
                    pass


class WorkerPool:
    """Fan tasks out to spawned workers; degrade gracefully to inline.

    ``run(tasks)`` returns the task results in submission order no matter
    which worker finished what first — completion order is an operational
    detail that must never reach the merged output.  ``workers <= 1``
    never spawns a process: every task runs inline in the parent, which
    *is* the serial path.
    """

    def __init__(self, workers: int = 1, task_timeout_s: float = 300.0,
                 max_retries: int = 1, backoff_base_s: float = 0.05):
        if workers < 1:
            raise ParError(f"need >= 1 worker, got {workers}")
        if task_timeout_s <= 0:
            raise ParError(f"task timeout must be > 0, got {task_timeout_s}")
        if max_retries < 0:
            raise ParError(f"max_retries must be >= 0, got {max_retries}")
        self.workers = workers
        self.task_timeout_s = task_timeout_s
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.stats = PoolStats()
        self._workers: List[_Worker] = []

    # -- public API ----------------------------------------------------------

    def run(self, tasks: Sequence[Task]) -> List[Any]:
        tasks = list(tasks)
        self.stats = PoolStats(workers=self.workers, tasks=len(tasks))
        for task in tasks:
            check_payload(task.payload, _context=f"{task.label or task.func}")
        if self.workers <= 1 or not tasks:
            return [self._run_inline(task) for task in tasks]
        try:
            return self._run_pooled(tasks)
        finally:
            self._shutdown_workers()

    # -- inline (serial) path ------------------------------------------------

    def _run_inline(self, task: Task) -> Any:
        value = resolve_ref(task.func)(task.payload)
        self.stats.results += 1
        return value

    # -- pooled path ---------------------------------------------------------

    def _run_pooled(self, tasks: List[Task]) -> List[Any]:
        env = _worker_environment()
        count = min(self.workers, len(tasks))
        self._workers = [_Worker(i, env) for i in range(count)]
        self.stats.workers = count
        results: Dict[int, Any] = {}
        pending: List[int] = list(range(len(tasks)))
        attempts = [0] * len(tasks)

        while len(results) < len(tasks):
            self._assign(pending, tasks, results, attempts)
            busy = [w for w in self._workers if w.busy]
            if not busy:
                if pending:
                    continue  # a crash during assignment requeued work
                break
            self._wait_one(busy, tasks, results, pending, attempts)
        return [results[index] for index in range(len(tasks))]

    def _assign(self, pending: List[int], tasks: List[Task],
                results: Dict[int, Any], attempts: List[int]) -> None:
        for worker in self._workers:
            if not pending:
                return
            if worker.busy:
                continue
            index = pending.pop(0)
            task = tasks[index]
            try:
                blob = pickle.dumps((index, task.func, task.payload))
            except (TypeError, AttributeError, pickle.PicklingError) as exc:
                raise ParError(
                    f"task {task.label or task.func} payload is not "
                    f"picklable: {exc}"
                ) from exc
            frame = encode_frame(TASK_FRAME, blob)
            try:
                worker.proc.stdin.write(frame)
                worker.proc.stdin.flush()
            except (BrokenPipeError, OSError):
                # The worker died between tasks: respawn and retry the
                # assignment (the task was never delivered, so this does
                # not count against the task's retry budget).
                self.stats.worker_crashes += 1
                self._respawn(worker)
                pending.insert(0, index)
                continue
            worker.sent_offset += len(frame)
            worker.task_index = index
            timeout = task.timeout_s if task.timeout_s is not None \
                else self.task_timeout_s
            worker.deadline = realtime.monotonic() + timeout

    def _wait_one(self, busy: List[_Worker], tasks: List[Task],
                  results: Dict[int, Any], pending: List[int],
                  attempts: List[int]) -> None:
        now = realtime.monotonic()
        wait_s = max(0.0, min(w.deadline for w in busy) - now)
        readable, _, _ = select.select(
            [w.proc.stdout for w in busy], [], [], wait_s)
        ready = {id(stream) for stream in readable}
        progressed = False
        for worker in busy:
            if id(worker.proc.stdout) in ready:
                self._receive(worker, tasks, results, pending, attempts)
                progressed = True
        if progressed:
            return
        now = realtime.monotonic()
        for worker in busy:
            if worker.busy and worker.deadline <= now:
                self.stats.timeouts += 1
                self._task_failed(
                    worker, tasks, results, pending, attempts,
                    reason=f"timed out after "
                           f"{tasks[worker.task_index].timeout_s or self.task_timeout_s:g}s",
                )

    def _receive(self, worker: _Worker, tasks: List[Task],
                 results: Dict[int, Any], pending: List[int],
                 attempts: List[int]) -> None:
        try:
            frame_type, payload, consumed = read_stream_frame(
                worker.proc.stdout, worker.recv_offset)
        except StateFormatError:
            # EOF or garbage on the result channel: the worker is gone
            # (killed, crashed, or corrupted) — treat as a crash.
            self.stats.worker_crashes += 1
            self._task_failed(worker, tasks, results, pending, attempts,
                              reason="worker died mid-task")
            return
        worker.recv_offset += consumed
        if frame_type == RESULT_FRAME:
            task_id, value = pickle.loads(payload)
            if task_id != worker.task_index:
                raise ParError(
                    f"worker {worker.index} answered task {task_id} while "
                    f"assigned {worker.task_index}; protocol violation"
                )
            results[task_id] = value
            self.stats.results += 1
            worker.task_index = None
            return
        if frame_type == ERROR_FRAME:
            task_id, text = pickle.loads(payload)
            task = tasks[task_id]
            raise ParError(
                f"task {task.label or task.func} raised in worker "
                f"{worker.index}:\n{text}"
            )
        raise ParError(
            f"worker {worker.index} sent unexpected frame type "
            f"{frame_type}"
        )

    def _task_failed(self, worker: _Worker, tasks: List[Task],
                     results: Dict[int, Any], pending: List[int],
                     attempts: List[int], reason: str) -> None:
        index = worker.task_index
        worker.task_index = None
        self._respawn(worker)
        attempts[index] += 1
        task = tasks[index]
        if attempts[index] > self.max_retries:
            # Retries exhausted: degrade to the serial path rather than
            # lose the campaign — the merged output stays complete and
            # byte-identical, it just stops being parallel for this task.
            self.stats.inline_fallbacks += 1
            results[index] = self._run_inline(task)
            return
        self.stats.retries += 1
        realtime.sleep(self.backoff_base_s * (2 ** (attempts[index] - 1)))
        pending.insert(0, index)

    def _respawn(self, worker: _Worker) -> None:
        worker.kill()
        self.stats.respawns += 1
        replacement = _Worker(worker.index, _worker_environment())
        self._workers[self._workers.index(worker)] = replacement

    def _shutdown_workers(self) -> None:
        for worker in self._workers:
            if worker.busy:
                worker.kill()
            else:
                worker.shutdown()
        self._workers = []
