"""Parallel-execution hygiene rules (the ``repro.par`` contract).

``par-entrypoint-hygiene``: worker entrypoints cross a spawn boundary by
*name* — the worker imports ``module:function`` fresh.  A lambda, a
nested function, or a bound method passed to ``func_ref`` /
``ParallelRunner.map_tasks`` / ``Task(func=...)`` fails only at runtime
(and only on the pooled path, so ``workers=1`` tests never see it); this
rule flags it statically.

``par-payload-hygiene``: task payloads must be plain data.  A payload
expression that captures a live ``SimClock``, ``Engine`` or ``Tracer``
ships per-process simulation state through a pickle boundary; the copy
that materializes in the worker is a *different* clock/engine, so the
shard silently diverges from the serial run.  Workers must construct
their own from seeds (see ``docs/parallelism.md``).
"""

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.engine import Rule, register_rule
from repro.analysis.findings import Finding
from repro.analysis.project import Project, SourceModule

#: calls whose first function-ish argument must be a module-level function
ENTRYPOINT_SINKS = frozenset({"func_ref", "map_tasks"})

#: constructors of live simulation objects that must never ride a payload
LIVE_CONSTRUCTORS = frozenset({"SimClock", "Engine", "Tracer"})


def _nested_callable_names(tree: ast.Module) -> Set[str]:
    """Names of functions that are NOT importable module-level entrypoints:
    defs nested inside other functions, and lambda-valued assignments."""
    nested: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for sub in ast.walk(node):
                if sub is node:
                    continue
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    nested.add(sub.name)
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    nested.add(target.id)
    return nested


def _entrypoint_arg(call: ast.Call) -> Optional[ast.expr]:
    """The function argument of an entrypoint sink call, if this is one."""
    name = None
    if isinstance(call.func, ast.Name):
        name = call.func.id
    elif isinstance(call.func, ast.Attribute):
        name = call.func.attr
    if name in ENTRYPOINT_SINKS:
        if call.args:
            return call.args[0]
        for keyword in call.keywords:
            if keyword.arg == "fn":
                return keyword.value
        return None
    if name == "Task":
        for keyword in call.keywords:
            if keyword.arg == "func":
                return keyword.value
        if call.args:
            return call.args[0]
    return None


@register_rule
class ParEntrypointHygieneRule(Rule):
    name = "par-entrypoint-hygiene"
    description = (
        "worker entrypoints passed to func_ref/map_tasks/Task must be "
        "module-level functions, never lambdas, nested defs or methods"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            yield from self._check_module(module)

    def _check_module(self, module: SourceModule) -> Iterable[Finding]:
        nested = _nested_callable_names(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            arg = _entrypoint_arg(node)
            if arg is None:
                continue
            problem = self._describe_problem(arg, nested)
            if problem:
                yield self.finding(
                    module.path, arg.lineno,
                    f"{problem}; workers import entrypoints by "
                    f"'module:function' name, so only module-level "
                    f"functions are referable",
                    symbol=self._symbol(arg))

    @staticmethod
    def _describe_problem(arg: ast.expr, nested: Set[str]) -> Optional[str]:
        if isinstance(arg, ast.Lambda):
            return "worker entrypoint is a lambda"
        if isinstance(arg, ast.Name) and arg.id in nested:
            return (f"worker entrypoint {arg.id!r} is a nested function "
                    f"or lambda-valued name")
        if isinstance(arg, ast.Attribute) \
                and isinstance(arg.value, ast.Name) \
                and arg.value.id in ("self", "cls"):
            return f"worker entrypoint {arg.attr!r} is a bound method"
        return None

    @staticmethod
    def _symbol(arg: ast.expr) -> str:
        if isinstance(arg, ast.Name):
            return arg.id
        if isinstance(arg, ast.Attribute):
            return arg.attr
        return "<lambda>"


def _live_bindings(tree: ast.Module) -> Dict[str, Tuple[str, int]]:
    """name -> (constructor, line) for variables assigned from a live
    simulation-object constructor anywhere in the module."""
    bindings: Dict[str, Tuple[str, int]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if isinstance(value, ast.Call):
            ctor = None
            if isinstance(value.func, ast.Name) \
                    and value.func.id in LIVE_CONSTRUCTORS:
                ctor = value.func.id
            elif isinstance(value.func, ast.Attribute) \
                    and value.func.attr in LIVE_CONSTRUCTORS:
                ctor = value.func.attr
            if ctor:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        bindings[target.id] = (ctor, node.lineno)
    return bindings


def _payload_args(call: ast.Call) -> List[ast.expr]:
    """The payload expression(s) of a par sink call, if this is one."""
    name = None
    if isinstance(call.func, ast.Name):
        name = call.func.id
    elif isinstance(call.func, ast.Attribute):
        name = call.func.attr
    if name == "map_tasks":
        payloads = [kw.value for kw in call.keywords
                    if kw.arg == "payloads"]
        if payloads:
            return payloads
        return list(call.args[1:2])
    if name == "Task":
        payloads = [kw.value for kw in call.keywords if kw.arg == "payload"]
        if payloads:
            return payloads
        return list(call.args[1:2])
    return []


@register_rule
class ParPayloadHygieneRule(Rule):
    name = "par-payload-hygiene"
    description = (
        "task payloads must be plain data: no SimClock, Engine or live "
        "Tracer may cross the worker pipe"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            yield from self._check_module(module)

    def _check_module(self, module: SourceModule) -> Iterable[Finding]:
        live = _live_bindings(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            for payload in _payload_args(node):
                yield from self._check_payload(module, payload, live)

    def _check_payload(self, module: SourceModule, payload: ast.expr,
                       live: Dict[str, Tuple[str, int]]
                       ) -> Iterable[Finding]:
        for sub in ast.walk(payload):
            if isinstance(sub, ast.Call):
                ctor = None
                if isinstance(sub.func, ast.Name) \
                        and sub.func.id in LIVE_CONSTRUCTORS:
                    ctor = sub.func.id
                elif isinstance(sub.func, ast.Attribute) \
                        and sub.func.attr in LIVE_CONSTRUCTORS:
                    ctor = sub.func.attr
                if ctor:
                    yield self.finding(
                        module.path, sub.lineno,
                        f"task payload constructs a live {ctor}; ship a "
                        f"seed and build it inside the worker instead",
                        symbol=ctor)
            elif isinstance(sub, ast.Name) and sub.id in live:
                ctor, _ = live[sub.id]
                yield self.finding(
                    module.path, sub.lineno,
                    f"task payload captures {sub.id!r}, a live {ctor}; "
                    f"ship a seed and build it inside the worker instead",
                    symbol=sub.id)
