"""CVE records and CVSS v2 scoring.

The paper's severity bands (§2): a flaw is *critical* when its CVSS v2 base
score is >= 7.0 and *medium* when 4.0 <= score < 7.0.  We implement the full
CVSS v2 base-score equation so records can carry vectors rather than bare
numbers, and derive severity from the computed score.
"""

import enum
from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.errors import VulnDBError


class Severity(enum.Enum):
    LOW = "low"
    MEDIUM = "medium"
    CRITICAL = "critical"  # the paper folds CVSS "high" into critical (>= 7)


def severity_for_score(score: float) -> Severity:
    """Map a CVSS v2 base score to the paper's bands."""
    if not 0.0 <= score <= 10.0:
        raise VulnDBError(f"CVSS v2 score out of range: {score}")
    if score >= 7.0:
        return Severity.CRITICAL
    if score >= 4.0:
        return Severity.MEDIUM
    return Severity.LOW


# CVSS v2 base metric value tables.
_ACCESS_VECTOR = {"L": 0.395, "A": 0.646, "N": 1.0}
_ACCESS_COMPLEXITY = {"H": 0.35, "M": 0.61, "L": 0.71}
_AUTHENTICATION = {"M": 0.45, "S": 0.56, "N": 0.704}
_IMPACT = {"N": 0.0, "P": 0.275, "C": 0.660}


def cvss_v2_base_score(vector: str) -> float:
    """Compute the CVSS v2 base score from a vector string.

    Vector format: ``AV:N/AC:L/Au:N/C:C/I:C/A:C`` (order-insensitive).
    """
    parts = {}
    for token in vector.split("/"):
        if ":" not in token:
            raise VulnDBError(f"bad CVSS v2 vector token {token!r}")
        key, value = token.split(":", 1)
        parts[key.upper()] = value.upper()
    try:
        av = _ACCESS_VECTOR[parts["AV"]]
        ac = _ACCESS_COMPLEXITY[parts["AC"]]
        au = _AUTHENTICATION[parts["AU"]]
        conf = _IMPACT[parts["C"]]
        integ = _IMPACT[parts["I"]]
        avail = _IMPACT[parts["A"]]
    except KeyError as exc:
        raise VulnDBError(f"CVSS v2 vector {vector!r} missing/invalid {exc}") from exc

    impact = 10.41 * (1 - (1 - conf) * (1 - integ) * (1 - avail))
    exploitability = 20 * av * ac * au
    f_impact = 0.0 if impact == 0 else 1.176
    score = ((0.6 * impact) + (0.4 * exploitability) - 1.5) * f_impact
    return round(max(0.0, score), 1)


@dataclass(frozen=True)
class CVERecord:
    """One vulnerability as tracked by the database."""

    cve_id: str
    year: int
    affected: FrozenSet[str]  # hypervisor kind values, e.g. {"xen"}
    component: str  # e.g. "pv", "resource-mgmt", "hardware", "qemu", ...
    cvss_vector: Optional[str] = None
    cvss_score: Optional[float] = None
    description: str = ""
    # §2.2 timeline (days relative to discovery; None = unknown, which is
    # the common case for Xen per the paper's survey).
    days_to_patch: Optional[int] = None

    def __post_init__(self) -> None:
        if self.cvss_vector is None and self.cvss_score is None:
            raise VulnDBError(f"{self.cve_id}: need a CVSS vector or score")
        if not self.affected:
            raise VulnDBError(f"{self.cve_id}: affects no hypervisor")

    @property
    def score(self) -> float:
        if self.cvss_score is not None:
            return self.cvss_score
        return cvss_v2_base_score(self.cvss_vector)

    @property
    def severity(self) -> Severity:
        return severity_for_score(self.score)

    def affects(self, hypervisor_kind: str) -> bool:
        return hypervisor_kind in self.affected

    @property
    def is_common(self) -> bool:
        """Shared by more than one hypervisor (the rare, dangerous case)."""
        return len(self.affected) > 1
