"""Tests for the workload models and timeline builders (§5.3)."""

import pytest

from repro.errors import ReproError
from repro.hypervisors.base import HypervisorKind
from repro.sim.clock import SimClock
from repro.core.transplant import HyperTP
from repro.workloads.base import HostTimeline, MetricSeries
from repro.workloads.darknet import DarknetWorkload
from repro.workloads.generator import timeline_for_inplace, timeline_for_migration
from repro.workloads.mysql import MySQLWorkload
from repro.workloads.redis import RedisWorkload
from repro.workloads.speccpu import (
    SPEC_BASELINES,
    SpecCPUWorkload,
    spec_degradation,
)

XEN = HypervisorKind.XEN
KVM = HypervisorKind.KVM


def simple_timeline(pause=(50.0, 52.0), switch_at=52.0):
    return HostTimeline(
        switches=[(0.0, XEN), (switch_at, KVM)],
        paused=[pause],
    )


class TestTimelineMechanics:
    def test_hypervisor_at(self):
        timeline = simple_timeline()
        assert timeline.hypervisor_at(10.0) is XEN
        assert timeline.hypervisor_at(60.0) is KVM

    def test_empty_timeline_rejected(self):
        with pytest.raises(ReproError):
            HostTimeline().hypervisor_at(0.0)

    def test_pause_detection(self):
        timeline = simple_timeline()
        assert timeline.is_paused(50.5)
        assert not timeline.is_paused(49.9)
        assert not timeline.is_paused(52.0)

    def test_paused_seconds_in_window(self):
        timeline = simple_timeline(pause=(10.0, 14.0))
        assert timeline.paused_seconds_in(0.0, 12.0) == pytest.approx(2.0)
        assert timeline.paused_seconds_in(0.0, 100.0) == pytest.approx(4.0)

    def test_degradation_factor(self):
        timeline = HostTimeline(switches=[(0.0, XEN)],
                                degraded=[(10.0, 20.0, 0.5)])
        assert timeline.degradation_factor(15.0) == 0.5
        assert timeline.degradation_factor(25.0) == 1.0


class TestMetricSeries:
    def test_mean_between(self):
        series = MetricSeries("m", "x")
        for t in range(10):
            series.append(float(t), float(t))
        assert series.mean_between(0, 5) == pytest.approx(2.0)

    def test_empty_mean_raises(self):
        with pytest.raises(ReproError):
            MetricSeries("m", "x").mean()

    def test_zero_span(self):
        series = MetricSeries("m", "x")
        for t, v in [(0, 5.0), (1, 0.0), (2, 0.0), (3, 5.0)]:
            series.append(float(t), v)
        assert series.zero_span() == (1.0, 2.0)
        series2 = MetricSeries("m", "x")
        series2.append(0.0, 1.0)
        assert series2.zero_span() == (None, None)


class TestRedis:
    def test_kvm_37_percent_faster(self):
        workload = RedisWorkload()
        assert workload.baseline(KVM) / workload.baseline(XEN) == \
            pytest.approx(1.37)

    def test_service_stops_during_pause(self):
        series = RedisWorkload(noise=0.0).run(100.0, simple_timeline())
        assert series.values[51] == 0.0
        assert series.values[10] > 0

    def test_network_outage_stops_service(self):
        timeline = HostTimeline(switches=[(0.0, XEN)],
                                network_down=[(30.0, 40.0)])
        series = RedisWorkload(noise=0.0).run(60.0, timeline)
        assert series.values[35] == 0.0

    def test_fig11_inplace_shape(self, xen_host_factory):
        machine = xen_host_factory(vm_count=1, vcpus=2, memory_gib=8.0)
        report = HyperTP().inplace(machine, KVM, SimClock())
        timeline = timeline_for_inplace(report, 50.0, XEN, KVM)
        series = RedisWorkload().run(200.0, timeline)
        z0, z1 = series.zero_span()
        # Paper: interruption of ~9 s starting near t=50.
        assert z0 == pytest.approx(50.0, abs=2.0)
        assert 6.0 <= (z1 - z0) <= 12.0
        before = series.mean_between(0, 45)
        after = series.mean_between(z1 + 5, 200)
        assert after / before == pytest.approx(1.37, abs=0.08)


class TestMySQL:
    def test_fig12_migration_shape(self, xen_host_factory, kvm_host_factory,
                                   fabric):
        from repro.core.migration import MigrationTP

        source = xen_host_factory(name="msrc", vcpus=2, memory_gib=8.0)
        destination = kvm_host_factory(name="mdst")
        fabric.connect(source, destination)
        domain = next(iter(source.hypervisor.domains.values()))
        report = MigrationTP(fabric, source, destination).migrate(
            domain, dirty_rate_bytes_s=8 << 20,
        )
        timeline = timeline_for_migration(report, 46.0, XEN, KVM,
                                          precopy_throughput_factor=0.32)
        workload = MySQLWorkload(noise=0.0)
        qps = workload.run(220.0, timeline)
        latency = workload.run_latency(220.0, timeline)
        # Paper: ~76 s of degradation with -68 % QPS and +252 % latency.
        assert 60 <= report.precopy_s <= 95
        mid = 46.0 + report.precopy_s / 2
        assert qps.values[int(mid)] == pytest.approx(
            workload.baseline(XEN) * 0.32, rel=0.05,
        )
        assert latency.values[int(mid)] == pytest.approx(
            5.0 * 3.52, rel=0.05,
        )
        # Recovery after migration.
        assert qps.values[-1] > workload.baseline(XEN) * 0.9

    def test_latency_zero_when_unreachable(self):
        workload = MySQLWorkload(noise=0.0)
        assert workload.latency_ms(51.0, simple_timeline()) == 0.0


class TestSpec:
    def test_all_23_benchmarks_present(self):
        assert len(SPEC_BASELINES) == 23

    def test_degradation_formula(self):
        workload = SpecCPUWorkload("deepsjeng")
        measured = max(workload.kvm_s, workload.xen_s) * 1.05
        assert workload.degradation(measured) == pytest.approx(
            (measured - min(workload.kvm_s, workload.xen_s))
            / min(workload.kvm_s, workload.xen_s),
        )

    def test_table5_inplace_range(self):
        results = spec_degradation("inplace", downtime_s=1.8)
        degs = [r.degradation for r in results.values()]
        # Paper: 0.2 % .. 4.3 % with the max near 4.2 %.
        assert max(degs) < 0.06
        assert min(degs) >= 0.0
        assert any(d > 0.02 for d in degs)

    def test_table5_migration_range(self):
        results = spec_degradation("migration", downtime_s=0.005,
                                   degraded_span_s=75.0,
                                   degraded_factor=0.93)
        degs = [r.degradation for r in results.values()]
        assert max(degs) < 0.07

    def test_transplant_cost_invisible_for_long_jobs(self):
        # §5.3: constant absolute overhead vanishes for hour-long runs.
        short = SpecCPUWorkload("namd").run_with_transplant("x", 1.8)
        assert short.degradation < 0.06

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ReproError):
            SpecCPUWorkload("doom3")


class TestDarknet:
    def test_baseline_iterations(self):
        timeline = HostTimeline(switches=[(0.0, XEN)])
        run = DarknetWorkload().train(10, timeline)
        assert run.mean_s == pytest.approx(2.044, abs=0.03)

    def test_inplace_hits_one_iteration(self):
        # Table 6: one iteration absorbs the whole downtime (4.97 s).
        timeline = HostTimeline(switches=[(0.0, XEN), (12.0, KVM)],
                                paused=[(10.0, 12.9)])
        run = DarknetWorkload().train(10, timeline)
        assert run.longest_s == pytest.approx(2.044 + 2.9, abs=0.1)
        others = [t for t in run.iteration_times if t != run.longest_s]
        assert max(others) < 2.2

    def test_migration_stretches_iterations_mildly(self):
        # Table 6: MigrationTP's longest iteration ~2.24 s.
        timeline = HostTimeline(switches=[(0.0, XEN), (80.0, KVM)],
                                degraded=[(4.0, 80.0, 0.91)],
                                paused=[(80.0, 80.005)])
        run = DarknetWorkload().train(20, timeline)
        assert run.longest_s == pytest.approx(2.25, abs=0.1)
        assert run.longest_s < 2.5

    def test_invalid_args_rejected(self):
        with pytest.raises(ReproError):
            DarknetWorkload(iteration_s=0)
        with pytest.raises(ReproError):
            DarknetWorkload().train(0, HostTimeline(switches=[(0.0, XEN)]))
