"""Device transplant handling.

Implements the §4.2.3 device taxonomy: pass-through devices are quiesced and
preserved through Guest State; emulated devices either have their VMM-side
emulation state copied+translated or — for network devices — are unplugged
before transplant and rescanned after.
"""

from repro.devices.model import (
    DeviceTransplantPlan,
    plan_device_transplant,
    transplant_strategy_for,
    restore_devices,
)

__all__ = [
    "DeviceTransplantPlan",
    "plan_device_transplant",
    "transplant_strategy_for",
    "restore_devices",
]
