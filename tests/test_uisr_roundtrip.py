"""Round-trip regression over every registered converter pair.

For each ordered pair (A, B) of hypervisors in the default registry, a
synthetic VM's state travels A -> UISR -> B -> UISR -> A and must come back
field-for-field identical — vCPU architectural state, MTRR, PIT and XSAVE
exactly; the IOAPIC up to the smaller pin count (pins above it are dropped
by the documented compat fixup).  This pins down §3.1's lossless-translation
claim for the whole repertoire, not just the Xen/KVM pair the focused tests
cover, and exercises the restore-side target verification.
"""

import dataclasses

import pytest

from repro.errors import UISRError
from repro.guest.devices import (
    KVM_IOAPIC_PINS,
    XEN_IOAPIC_PINS,
    make_default_platform,
)
from repro.guest.drivers import NetworkDriver
from repro.guest.vm import VMConfig
from repro.hw.machine import M1_SPEC, Machine
from repro.hypervisors import make_hypervisor
from repro.hypervisors.base import HypervisorKind
from repro.hypervisors.nova.formats import NOVA_IOAPIC_PINS
from repro.core.uisr.format import UISR_VERSION, UISRDeviceState
from repro.core.uisr.registry import default_registry

GIB = 1024 ** 3

IOAPIC_PINS = {
    HypervisorKind.XEN: XEN_IOAPIC_PINS,
    HypervisorKind.KVM: KVM_IOAPIC_PINS,
    HypervisorKind.NOVA: NOVA_IOAPIC_PINS,
}


def make_host(kind, name, vcpus=2, memory_gib=1.0, seed=7):
    """One booted hypervisor of ``kind`` with a single seeded guest."""
    machine = Machine(M1_SPEC, name=name)
    hypervisor = make_hypervisor(kind)
    hypervisor.boot(machine)
    domain = hypervisor.create_vm(VMConfig(
        name=f"{name}-vm0", vcpus=vcpus,
        memory_bytes=int(memory_gib * GIB), seed=seed,
    ))
    domain.vm.platform = make_default_platform(
        vcpus, ioapic_pins=IOAPIC_PINS[kind], seed=seed,
    )
    return hypervisor, domain


def ordered_pairs():
    kinds = default_registry().supported_kinds()
    return [(a, b) for a in kinds for b in kinds if a is not b]


def vm_view(domain):
    """Everything the round-trip must preserve, minus the IOAPIC."""
    platform = domain.vm.platform
    return (
        [v.architectural_view() for v in domain.vm.vcpus],
        [l.registers_view() for l in platform.lapics],
        platform.pit.view(),
        platform.mtrr.view(),
        [x.view() for x in platform.xsave],
    )


@pytest.mark.parametrize(
    "source_kind,via_kind", ordered_pairs(),
    ids=[f"{a.value}-{b.value}" for a, b in ordered_pairs()],
)
class TestEveryPairRoundTrips:
    def test_state_survives_round_trip(self, source_kind, via_kind):
        registry = default_registry()
        source, source_domain = make_host(source_kind, "src")
        original = vm_view(source_domain)
        original_pins = (source_domain.vm.platform.ioapic
                         .redirection_view())

        uisr_out = registry.to_uisr(source_kind)(source, source_domain)
        via, via_domain = make_host(via_kind, "via")
        registry.from_uisr(via_kind)(via, via_domain, uisr_out)

        uisr_back = registry.to_uisr(via_kind)(via, via_domain)
        dest, dest_domain = make_host(source_kind, "dst")
        registry.from_uisr(source_kind)(dest, dest_domain, uisr_back)

        assert vm_view(dest_domain) == original
        surviving = min(IOAPIC_PINS[source_kind], IOAPIC_PINS[via_kind])
        final_pins = dest_domain.vm.platform.ioapic.redirection_view()
        assert final_pins[:surviving] == original_pins[:surviving]

    def test_provenance_recorded_on_restore(self, source_kind, via_kind):
        registry = default_registry()
        source, source_domain = make_host(source_kind, "src")
        assert source_domain.provenance is None  # native creation

        uisr = registry.to_uisr(source_kind)(source, source_domain)
        via, via_domain = make_host(via_kind, "via")
        registry.from_uisr(via_kind)(via, via_domain, uisr)
        assert via_domain.provenance == (source_kind.value, UISR_VERSION)

        uisr_back = registry.to_uisr(via_kind)(via, via_domain)
        dest, dest_domain = make_host(source_kind, "dst")
        registry.from_uisr(source_kind)(dest, dest_domain, uisr_back)
        assert dest_domain.provenance == (via_kind.value, UISR_VERSION)


class TestRestoreTargetVerification:
    def test_memory_size_mismatch_rejected(self):
        registry = default_registry()
        source, source_domain = make_host(HypervisorKind.XEN, "src",
                                          memory_gib=1.0)
        uisr = registry.to_uisr(HypervisorKind.XEN)(source, source_domain)
        dest, dest_domain = make_host(HypervisorKind.KVM, "dst",
                                      memory_gib=2.0)
        with pytest.raises(UISRError, match="memory size"):
            registry.from_uisr(HypervisorKind.KVM)(dest, dest_domain, uisr)

    def test_unknown_device_strategy_rejected(self):
        registry = default_registry()
        source, source_domain = make_host(HypervisorKind.XEN, "src")
        uisr = registry.to_uisr(HypervisorKind.XEN)(source, source_domain)
        bad = dataclasses.replace(
            uisr,
            devices=[UISRDeviceState(name="net0", device_class="net",
                                     strategy="teleport")],
        )
        dest, dest_domain = make_host(HypervisorKind.KVM, "dst")
        with pytest.raises(UISRError, match="unknown transplant strategy"):
            registry.from_uisr(HypervisorKind.KVM)(dest, dest_domain, bad)

    def test_device_without_attached_driver_rejected(self):
        registry = default_registry()
        source, source_domain = make_host(HypervisorKind.XEN, "src")
        source_domain.vm.attach_device(NetworkDriver("net0"))
        uisr = registry.to_uisr(HypervisorKind.XEN)(source, source_domain)
        assert [d.name for d in uisr.devices] == ["net0"]
        # The destination VM never had net0 attached.
        dest, dest_domain = make_host(HypervisorKind.KVM, "dst")
        with pytest.raises(UISRError, match="no [\\s\\S]*attached driver"):
            registry.from_uisr(HypervisorKind.KVM)(dest, dest_domain, uisr)

    def test_device_records_travel_and_verify(self):
        registry = default_registry()
        source, source_domain = make_host(HypervisorKind.XEN, "src")
        driver = NetworkDriver("net0")
        source_domain.vm.attach_device(driver)
        uisr = registry.to_uisr(HypervisorKind.XEN)(source, source_domain)
        assert uisr.devices[0].strategy == "unplug-rescan"

        dest, dest_domain = make_host(HypervisorKind.KVM, "dst")
        dest_domain.vm.attach_device(NetworkDriver("net0"))
        restored = registry.from_uisr(HypervisorKind.KVM)(
            dest, dest_domain, uisr
        )
        assert restored is dest_domain
        assert restored.provenance == ("xen", UISR_VERSION)
