"""Tests for Xen<->UISR<->KVM conversion and the compat fixups."""

import pytest

from repro.errors import UISRError
from repro.guest.devices import (
    IOAPICPin,
    IOAPICState,
    KVM_IOAPIC_PINS,
    XEN_IOAPIC_PINS,
    make_default_platform,
)
from repro.core.convert import (
    apply_platform_fixups,
    from_uisr_kvm,
    from_uisr_xen,
    ioapic_grow_to,
    ioapic_shrink_to,
    to_uisr_kvm,
    to_uisr_xen,
)


class TestIOAPICFixups:
    def test_shrink_drops_high_pins(self):
        ioapic = make_default_platform(1).ioapic
        shrunk = ioapic_shrink_to(ioapic, KVM_IOAPIC_PINS)
        assert shrunk.pin_count == KVM_IOAPIC_PINS
        assert shrunk.pins == ioapic.pins[:KVM_IOAPIC_PINS]

    def test_shrink_refuses_live_routes(self):
        pins = [IOAPICPin() for _ in range(48)]
        pins[40] = IOAPICPin(vector=0x55, masked=False)
        with pytest.raises(UISRError):
            ioapic_shrink_to(IOAPICState(pins=pins), KVM_IOAPIC_PINS)

    def test_shrink_below_zero_rejected(self):
        with pytest.raises(UISRError):
            ioapic_shrink_to(IOAPICState(pins=[IOAPICPin()]), 0)

    def test_grow_pads_with_disconnected_pins(self):
        ioapic = make_default_platform(
            1, ioapic_pins=KVM_IOAPIC_PINS
        ).ioapic
        grown = ioapic_grow_to(ioapic, XEN_IOAPIC_PINS)
        assert grown.pin_count == XEN_IOAPIC_PINS
        for pin in grown.pins[KVM_IOAPIC_PINS:]:
            assert pin.masked and pin.vector == 0

    def test_grow_smaller_rejected(self):
        ioapic = make_default_platform(1).ioapic
        with pytest.raises(UISRError):
            ioapic_grow_to(ioapic, KVM_IOAPIC_PINS)

    def test_shrink_then_grow_preserves_low_pins(self):
        ioapic = make_default_platform(1).ioapic
        roundtrip = ioapic_grow_to(
            ioapic_shrink_to(ioapic, KVM_IOAPIC_PINS), XEN_IOAPIC_PINS
        )
        assert (roundtrip.redirection_view()[:KVM_IOAPIC_PINS]
                == ioapic.redirection_view()[:KVM_IOAPIC_PINS])

    def test_apply_platform_fixups_does_not_mutate_input(self):
        platform = make_default_platform(1)
        fixed = apply_platform_fixups(platform, KVM_IOAPIC_PINS)
        assert platform.ioapic.pin_count == XEN_IOAPIC_PINS
        assert fixed.ioapic.pin_count == KVM_IOAPIC_PINS


class TestXenToKVM:
    def test_full_conversion_preserves_architectural_subset(
            self, xen_host_factory, kvm_host_factory):
        source = xen_host_factory(vm_count=1, vcpus=2)
        xen = source.hypervisor
        domain = next(iter(xen.domains.values()))
        original_vcpus = [v.architectural_view() for v in domain.vm.vcpus]

        uisr = to_uisr_xen(xen, domain, pram_file=None)
        assert uisr.source_hypervisor == "xen"
        assert not uisr.memory_map.by_reference

        dest = kvm_host_factory(vm_count=1, vcpus=2)
        kvm = dest.hypervisor
        kvm_domain = next(iter(kvm.domains.values()))
        from_uisr_kvm(kvm, kvm_domain, uisr, pram_fs=None)

        assert ([v.architectural_view() for v in kvm_domain.vm.vcpus]
                == original_vcpus)
        assert kvm_domain.vm.platform.ioapic.pin_count == KVM_IOAPIC_PINS
        # Low 24 pins survive the shrink.
        assert (kvm_domain.vm.platform.ioapic.redirection_view()
                == domain.vm.platform.ioapic.redirection_view()[:KVM_IOAPIC_PINS])

    def test_wrong_hypervisor_kind_rejected(self, kvm_host_factory):
        dest = kvm_host_factory(vm_count=1)
        kvm = dest.hypervisor
        domain = next(iter(kvm.domains.values()))
        with pytest.raises(UISRError):
            to_uisr_xen(kvm, domain)

    def test_vcpu_count_mismatch_rejected(self, xen_host_factory,
                                          kvm_host_factory):
        source = xen_host_factory(vm_count=1, vcpus=2)
        xen = source.hypervisor
        uisr = to_uisr_xen(xen, next(iter(xen.domains.values())))
        dest = kvm_host_factory(vm_count=1, vcpus=1)
        kvm = dest.hypervisor
        with pytest.raises(UISRError):
            from_uisr_kvm(kvm, next(iter(kvm.domains.values())), uisr)

    def test_by_reference_requires_pram(self, xen_host_factory,
                                        kvm_host_factory):
        source = xen_host_factory(vm_count=1)
        xen = source.hypervisor
        domain = next(iter(xen.domains.values()))
        uisr = to_uisr_xen(xen, domain, pram_file=domain.vm.name)
        dest = kvm_host_factory(vm_count=1)
        kvm = dest.hypervisor
        with pytest.raises(UISRError):
            from_uisr_kvm(kvm, next(iter(kvm.domains.values())), uisr,
                          pram_fs=None)


class TestKVMToXen:
    def test_full_conversion_grows_ioapic(self, kvm_host_factory,
                                          xen_host_factory):
        source = kvm_host_factory(vm_count=1, vcpus=2)
        kvm = source.hypervisor
        domain = next(iter(kvm.domains.values()))
        original_vcpus = [v.architectural_view() for v in domain.vm.vcpus]

        uisr = to_uisr_kvm(kvm, domain, pram_file=None)
        assert uisr.source_hypervisor == "kvm"

        dest = xen_host_factory(vm_count=1, vcpus=2)
        xen = dest.hypervisor
        xen_domain = next(iter(xen.domains.values()))
        from_uisr_xen(xen, xen_domain, uisr, pram_fs=None)

        assert ([v.architectural_view() for v in xen_domain.vm.vcpus]
                == original_vcpus)
        assert xen_domain.vm.platform.ioapic.pin_count == XEN_IOAPIC_PINS

    def test_double_roundtrip_stabilizes(self, xen_host_factory,
                                         kvm_host_factory):
        """Xen->UISR->KVM->UISR->Xen preserves the surviving 24-pin subset
        and every other architectural field exactly."""
        source = xen_host_factory(vm_count=1, vcpus=2)
        xen = source.hypervisor
        xen_domain = next(iter(xen.domains.values()))
        uisr1 = to_uisr_xen(xen, xen_domain)

        mid = kvm_host_factory(vm_count=1, vcpus=2)
        kvm = mid.hypervisor
        kvm_domain = next(iter(kvm.domains.values()))
        from_uisr_kvm(kvm, kvm_domain, uisr1)
        uisr2 = to_uisr_kvm(kvm, kvm_domain)

        dest = xen_host_factory(vm_count=1, vcpus=2, name="final")
        xen2 = dest.hypervisor
        final = next(iter(xen2.domains.values()))
        from_uisr_xen(xen2, final, uisr2)

        assert ([v.architectural_view() for v in final.vm.vcpus]
                == [v.architectural_view() for v in xen_domain.vm.vcpus])
        original_pins = xen_domain.vm.platform.ioapic.redirection_view()
        final_pins = final.vm.platform.ioapic.redirection_view()
        assert final_pins[:KVM_IOAPIC_PINS] == original_pins[:KVM_IOAPIC_PINS]
