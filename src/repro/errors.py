"""Exception hierarchy for the HyperTP reproduction.

Every subsystem raises a subclass of :class:`ReproError` so that callers can
distinguish reproduction-library failures from programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """Raised for discrete-event engine misuse (time travel, dead processes)."""


class HardwareError(ReproError):
    """Raised for hardware-model violations (frame exhaustion, bad machine)."""


class FrameAllocationError(HardwareError):
    """Raised when a physical frame allocation cannot be satisfied."""


class HypervisorError(ReproError):
    """Raised for hypervisor-level failures (bad domain, wrong lifecycle)."""


class VMLifecycleError(HypervisorError):
    """Raised when a VM operation is invalid in the VM's current state."""


class StateFormatError(ReproError):
    """Raised when hypervisor state bytes cannot be parsed or serialized."""


class UISRError(StateFormatError):
    """Raised when UISR encoding, decoding, or conversion fails."""


class PRAMError(StateFormatError):
    """Raised when a PRAM structure is malformed or inconsistent."""


class TransplantError(ReproError):
    """Raised when a transplant (InPlaceTP or MigrationTP) cannot proceed."""


class MigrationError(TransplantError):
    """Raised when a live migration fails (no capacity, link down)."""


class KexecError(TransplantError):
    """Raised when the simulated micro-reboot fails."""


class ClusterError(ReproError):
    """Raised for cluster-planning failures (unsatisfiable constraints)."""


class PlanningError(ClusterError):
    """Raised when the BtrPlace-style planner cannot produce a valid plan."""


class FleetError(ReproError):
    """Raised for fleet control-plane failures (illegal state transitions,
    stuck campaigns, bad configuration)."""


class JournalError(ReproError):
    """Raised for campaign-journal failures (bad record, divergent replay,
    resuming a journal with no campaign metadata)."""


class JournalDivergence(JournalError):
    """Raised when a recovering campaign produces a record that does not
    match the journaled prefix — the fail-closed signal that replay and
    the durable log disagree."""


class JournalCrash(JournalError):
    """Raised by crash-point fault injection immediately after a journal
    record reaches the file — simulates the controller dying with exactly
    that prefix durable."""


class OrchestratorError(ReproError):
    """Raised for Nova/libvirt orchestration-layer failures."""


class ObservabilityError(ReproError):
    """Raised for tracing/metrics misuse (unclosed spans, metric clashes)."""


class ParError(ReproError):
    """Raised for parallel-execution failures (unpicklable entrypoints,
    unsafe task payloads, unmergeable shard results, exhausted retries)."""


class SentinelError(ReproError):
    """Raised for response-plane failures (bad feed schedule, bad policy
    knobs, a campaign the responder cannot reconcile with the inventory)."""


class VulnDBError(ReproError):
    """Raised for vulnerability-database failures (unknown CVE, bad score)."""


class NoSafeHypervisorError(VulnDBError):
    """Raised when no hypervisor in the pool is safe against an open flaw."""
