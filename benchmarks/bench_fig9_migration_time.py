"""Fig. 9 — total migration time: MigrationTP (Xen->KVM) vs Xen->Xen.

Shapes to hold: vCPU count has no effect; memory size scales time linearly
(link-bound); with many VMs MigrationTP shares the link evenly (tight
spread) while Xen's serialized receive smears per-VM times widely.

Run directly with ``--workers N`` to spread the three sweep axes over
worker processes; each axis cell simulates both destinations, and the
rows are identical for any worker count.
"""

import argparse
import statistics

from repro.bench.report import format_table, print_experiment
from repro.bench.runner import migration_axis_cell, migration_sweep
from repro.hw.machine import M1_SPEC
from repro.hypervisors.base import HypervisorKind
from repro.par import ParallelRunner

VCPUS = [1, 2, 4, 6, 8, 10]
MEMORY = [2.0, 4.0, 6.0, 8.0, 10.0, 12.0]
VM_COUNTS = [2, 4, 6, 8, 10, 12]


def run():
    xen = migration_sweep(M1_SPEC, HypervisorKind.XEN, VCPUS, MEMORY,
                          VM_COUNTS)
    hypertp = migration_sweep(M1_SPEC, HypervisorKind.KVM, VCPUS, MEMORY,
                              VM_COUNTS)
    rows = []
    for axis, points in (("vcpus", VCPUS), ("memory_gib", MEMORY),
                         ("vm_count", VM_COUNTS)):
        for point, xen_reports, tp_reports in zip(points, xen[axis],
                                                  hypertp[axis]):
            xen_s = [r.total_s for r in xen_reports]
            tp_s = [r.total_s for r in tp_reports]
            rows.append([
                axis, point,
                statistics.median(xen_s), max(xen_s) - min(xen_s),
                statistics.median(tp_s), max(tp_s) - min(tp_s),
            ])
    return rows


HEADERS = ["sweep", "x", "Xen med (s)", "Xen spread (s)",
           "HyperTP med (s)", "HyperTP spread (s)"]


def test_fig9_migration_time(benchmark):
    rows = benchmark(run)
    print_experiment("Fig. 9", "total migration time: Xen vs MigrationTP",
                     format_table(HEADERS, rows))


def run_parallel(workers=1):
    """The same rows as :func:`run`, one worker cell per sweep axis."""
    axes = (("vcpus", VCPUS), ("memory_gib", MEMORY),
            ("vm_count", VM_COUNTS))
    cells = [
        {"spec": "M1", "axis": axis, "points": points,
         "dests": [HypervisorKind.XEN.value, HypervisorKind.KVM.value]}
        for axis, points in axes
    ]
    runner = ParallelRunner(workers=workers, task_timeout_s=600.0)
    per_cell = runner.map_tasks(migration_axis_cell, cells,
                                labels=[c["axis"] for c in cells])
    rows = []
    for entries in per_cell:
        for entry in entries:
            xen_s = entry[HypervisorKind.XEN.value]
            tp_s = entry[HypervisorKind.KVM.value]
            rows.append([
                entry["axis"], entry["point"],
                statistics.median(xen_s), max(xen_s) - min(xen_s),
                statistics.median(tp_s), max(tp_s) - min(tp_s),
            ])
    return rows


def test_fig9_parallel_matches_serial():
    assert run_parallel(workers=1) == run()


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args()
    print_experiment("Fig. 9", "total migration time: Xen vs MigrationTP",
                     format_table(HEADERS, run_parallel(args.workers)))
