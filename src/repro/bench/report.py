"""Rendering and artifact plumbing for the benchmark harness.

Every ``benchmarks/bench_*`` file prints the rows or series the paper's
corresponding table/figure reports, via these helpers, so the regenerated
artifacts are easy to eyeball against the original.

JSON artifacts use the wrapper produced by :func:`bench_document`: the
deterministic **payload** (same seed, same bytes, no matter how the run
was executed) is separated from the volatile **meta** block (wall-clock
timings, worker count, host environment).  CI compares parallel and
serial runs with ``python -m repro.bench.report cmp a.json b.json``,
which byte-compares only the payload and merely reports the meta.
"""

import json
import os
import platform
import sys
from typing import Dict, Optional, Sequence

BENCH_ARTIFACT_FORMAT = "hypertp-bench-artifact"
BENCH_ARTIFACT_VERSION = 1


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Render an aligned text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[float], ys: Sequence[float],
                  x_label: str = "x", y_label: str = "y") -> str:
    """Render a (figure) series as aligned x/y columns."""
    rows = [(x, y) for x, y in zip(xs, ys)]
    return format_table([x_label, y_label], rows, title=name)


def print_experiment(exp_id: str, description: str, body: str) -> None:
    """Uniform experiment banner + body used by every bench file."""
    banner = f"=== {exp_id}: {description} ==="
    print()
    print(banner)
    print(body)
    print("=" * len(banner))


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.1f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


# -- JSON artifacts -----------------------------------------------------------


def host_env() -> Dict[str, object]:
    """Volatile host identification for an artifact's meta block."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }


def bench_document(payload: Dict, meta: Optional[Dict] = None) -> Dict:
    """Wrap a deterministic payload with a volatile meta block.

    ``payload`` holds everything that must be byte-identical across runs
    of the same seed (results, sweeps, configs); ``meta`` holds what is
    allowed to differ (wall-clock seconds, ``workers``, ``host_env``,
    pool stats).  Comparison tooling looks only at the payload.
    """
    meta = dict(meta or {})
    meta.setdefault("host_env", host_env())
    meta.setdefault("workers", 1)
    return {
        "format": BENCH_ARTIFACT_FORMAT,
        "version": BENCH_ARTIFACT_VERSION,
        "meta": meta,
        "payload": payload,
    }


def payload_json(document: Dict) -> str:
    """The byte-comparable serialization of an artifact's payload."""
    if document.get("format") != BENCH_ARTIFACT_FORMAT:
        raise ValueError(
            f"not a bench artifact: format "
            f"{document.get('format')!r}, want {BENCH_ARTIFACT_FORMAT!r}"
        )
    return json.dumps(document["payload"], indent=2, sort_keys=True)


def payloads_equal(a: Dict, b: Dict) -> bool:
    """True when two artifacts' deterministic payloads are byte-identical."""
    return payload_json(a) == payload_json(b)


def write_bench_json(path: str, payload: Dict,
                     meta: Optional[Dict] = None) -> Dict:
    """Write a wrapped artifact; returns the document written."""
    document = bench_document(payload, meta)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def read_bench_json(path: str) -> Dict:
    with open(path) as handle:
        document = json.load(handle)
    if document.get("format") != BENCH_ARTIFACT_FORMAT:
        raise ValueError(
            f"{path}: not a bench artifact (format "
            f"{document.get('format')!r})"
        )
    return document


def _cmd_cmp(args) -> int:
    """``python -m repro.bench.report cmp A B`` — payload-aware compare."""
    try:
        a = read_bench_json(args.a)
        b = read_bench_json(args.b)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"cmp: {error}", file=sys.stderr)
        return 2
    if payloads_equal(a, b):
        meta_a, meta_b = a.get("meta", {}), b.get("meta", {})
        print(f"payloads identical "
              f"(workers {meta_a.get('workers')} vs {meta_b.get('workers')}, "
              f"wall {meta_a.get('wall_s', '?')} vs "
              f"{meta_b.get('wall_s', '?')} s)")
        return 0
    print(f"cmp: payloads differ between {args.a} and {args.b}",
          file=sys.stderr)
    return 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.bench.report",
        description="benchmark artifact tooling",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    cmp_parser = sub.add_parser(
        "cmp",
        help="compare two bench artifacts' deterministic payloads "
             "(meta blocks are reported, never compared)",
    )
    cmp_parser.add_argument("a")
    cmp_parser.add_argument("b")
    args = parser.parse_args(argv)
    if args.command == "cmp":
        return _cmd_cmp(args)
    return 2


if __name__ == "__main__":
    sys.exit(main())
