"""Restore-side validation shared by every ``from_uisr_*`` converter.

Before any state lands in the target hypervisor, the UISR document is
checked against the domain it is about to restore into: vCPU count and
guest-memory size must match the domain, and every device record must
carry a known transplant strategy and name a driver actually attached to
the target VM.  A mismatch means the document and the domain disagree
about what VM this is — restoring anyway would corrupt the guest, so the
converters fail loudly with :class:`UISRError` instead (§3.1: translation
is lossless *and* lands in the right place).
"""

from typing import List

from repro.errors import UISRError
from repro.hypervisors.base import Domain
from repro.devices.model import (
    STRATEGY_PASSTHROUGH,
    STRATEGY_TRANSLATE,
    STRATEGY_UNPLUG_RESCAN,
)
from repro.core.uisr.format import UISRDeviceState

KNOWN_DEVICE_STRATEGIES = frozenset({
    STRATEGY_PASSTHROUGH,
    STRATEGY_TRANSLATE,
    STRATEGY_UNPLUG_RESCAN,
})


def verify_restore_target(domain: Domain, *, vm_name: str, vcpu_count: int,
                          memory_bytes: int,
                          devices: List[UISRDeviceState]) -> None:
    """Check a UISR document's sizing and device records against ``domain``.

    The caller passes the document's fields explicitly, which keeps each
    ``from_uisr_*`` converter's consumption of them visible to the
    ``uisr-field-coverage`` analysis rule at the call site.
    """
    if vcpu_count != domain.vm.config.vcpus:
        raise UISRError(
            f"UISR {vm_name}: vCPU count {vcpu_count} does not match "
            f"domain ({domain.vm.config.vcpus})"
        )
    if memory_bytes != domain.vm.image.size_bytes:
        raise UISRError(
            f"UISR {vm_name}: memory size {memory_bytes} does not match "
            f"domain image ({domain.vm.image.size_bytes} bytes)"
        )
    attached = {driver.name for driver in domain.vm.devices}
    for record in devices:
        if record.strategy not in KNOWN_DEVICE_STRATEGIES:
            raise UISRError(
                f"UISR {vm_name}: device {record.name!r} carries unknown "
                f"transplant strategy {record.strategy!r}"
            )
        if record.name not in attached:
            raise UISRError(
                f"UISR {vm_name}: device record {record.name!r} has no "
                f"attached driver on the restore target"
            )
