"""Shape assertions over the benchmark harness outputs.

Each test runs a bench module's ``run()`` and checks the properties the
paper's corresponding artifact exhibits — the executable form of
EXPERIMENTS.md.  (The heavyweight sweep benches are covered by their own
pytest-benchmark runs; here we check the cheap ones end to end.)
"""

import importlib
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def load_bench(name):
    if str(BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(BENCH_DIR))
    return importlib.import_module(name)


class TestTable1Bench:
    def test_rows_match_paper(self):
        bench = load_bench("bench_table1_vulnerabilities")
        _, rows = bench.build_table1()
        assert rows[0] == [2013, 3, 38, 3, 21, 0, 0]
        assert rows[2] == [2015, 11, 20, 1, 4, 1, 2]
        total = rows[-1]
        assert total[0] == "Total"
        assert total[1] == 55 and total[3] == 13

    def test_render_includes_window_stats(self):
        bench = load_bench("bench_table1_vulnerabilities")
        text = bench.render()
        assert "mean=71d" in text
        assert "min=8d" in text and "max=180d" in text


class TestFig6Bench:
    def test_measured_within_tolerance_of_paper(self):
        bench = load_bench("bench_fig6_inplace_breakdown")
        rows = bench.run()
        for machine, phase, measured, paper in rows:
            if phase == "Network":
                assert measured == paper
            elif phase == "downtime":
                assert measured == pytest.approx(paper, rel=0.15)
            else:
                assert measured == pytest.approx(paper, abs=0.12)


class TestTable4Bench:
    def test_ratio_and_totals(self):
        bench = load_bench("bench_table4_migration_baseline")
        rows = bench.run()
        downtime_row = rows[0]
        assert downtime_row[1] > 10 * downtime_row[3]  # Xen >> MigrationTP
        time_row = rows[1]
        assert time_row[1] == pytest.approx(time_row[3], rel=0.1)


class TestTable5Bench:
    def test_degradations_low_single_digits(self):
        bench = load_bench("bench_table5_spec")
        rows = bench.run()
        max_row = rows[-1]
        assert max_row[0] == "MAX"
        assert 0 < max_row[4] < 7.0  # InPlaceTP max deg %
        assert 0 < max_row[6] < 7.0  # MigrationTP max deg %
        assert len(rows) == 24  # 23 apps + MAX


class TestTable6Bench:
    def test_ordering_matches_paper(self):
        bench = load_bench("bench_table6_darknet")
        rows = bench.run()
        by_name = {row[0]: row for row in rows}
        default_longest = by_name["Default"][2]
        assert by_name["MigrationTP"][2] > default_longest
        assert by_name["Xen migration"][2] > by_name["MigrationTP"][2]
        assert by_name["InPlaceTP"][2] > by_name["Xen migration"][2]
        assert by_name["InPlaceTP"][2] == pytest.approx(4.97, abs=0.6)


class TestFig13Bench:
    def test_monotone_decline(self):
        bench = load_bench("bench_fig13_cluster")
        rows = bench.run()
        migrations = [row[1] for row in rows]
        assert migrations == sorted(migrations, reverse=True)
        assert migrations[0] > 100  # re-migrations at 0 %


class TestFig14Bench:
    def test_pram_exact_anchors(self):
        bench = load_bench("bench_fig14_memory_overhead")
        rows = bench.run()
        values = {(row[0], row[1]): row[2] for row in rows}
        assert values[("PRAM vs memory", "1 GiB")] == 16.0
        assert values[("PRAM vs memory", "12 GiB")] == 60.0
        assert values[("PRAM vs #VMs", "12 VMs")] == 148.0

    def test_uisr_linear(self):
        bench = load_bench("bench_fig14_memory_overhead")
        rows = [r for r in bench.run() if r[0] == "UISR vs vCPUs"]
        sizes = [r[2] for r in rows]
        assert sizes == sorted(sizes)
        assert sizes[-1] > 5 * sizes[0]


class TestSurfaceBench:
    def test_escape_fractions_high(self):
        bench = load_bench("bench_section2_surface")
        rows = bench.run()
        escapes = [r for r in rows if str(r[0]).startswith("escape")]
        assert len(escapes) == 6  # all ordered pairs in a 3-pool
        for row in escapes:
            fraction = float(row[3].rstrip("%"))
            assert fraction > 90.0


class TestFleetWindowBench:
    def test_smoke_sweep_shape(self, tmp_path):
        import json

        bench = load_bench("bench_fleet_window")
        results, stats = bench.run(smoke=True)
        entries = [r["entry"] for r in results]
        assert [entry["hosts"] for entry in entries] == [10] * 6
        assert [entry["fail_rate"] for entry in entries] == \
            [0.0, 0.01, 0.05, 0.0, 0.0, 0.0]
        assert [entry["mechanism"] for entry in entries] == \
            ["hybrid"] * 3 + ["inplace", "migration", "auto"]
        for result, entry in zip(results, entries):
            assert entry["done_hosts"] + entry["rolled_back_hosts"] == 10
            assert result["wall_s"] >= 0
            assert "wall_s" not in entry  # volatile values stay out
            mix = entry["mechanism_mix"]
            assert sum(kind["hosts"] for kind in mix.values()) == 10
            if entry["percentiles_s"]:
                pct = entry["percentiles_s"]
                assert pct["p50"] <= pct["p95"] <= pct["p99"] <= pct["max"]
        by_mechanism = {e["mechanism"]: e for e in entries
                        if e["fail_rate"] == 0.0}
        assert by_mechanism["inplace"]["migrations_executed"] == 0
        assert (by_mechanism["migration"]["migrations_executed"]
                > by_mechanism["hybrid"]["migrations_executed"])
        path = bench.write_json(results, tmp_path / "BENCH_fleet_window.json",
                                stats=stats)
        document = json.loads(Path(path).read_text())
        assert document["format"] == "hypertp-bench-artifact"
        assert document["payload"]["format"] == "hypertp-bench-fleet-window"
        assert len(document["payload"]["results"]) == 6
        assert document["meta"]["workers"] == 1
        assert "host_env" in document["meta"]
        assert "wall_s" in document["meta"]

    def test_parallel_artifact_payload_matches_serial(self, tmp_path):
        from repro.bench.report import payloads_equal, read_bench_json

        bench = load_bench("bench_fleet_window")
        serial_results, serial_stats = bench.run(smoke=True, workers=1)
        parallel_results, parallel_stats = bench.run(smoke=True, workers=2)
        serial = bench.write_json(serial_results, tmp_path / "serial.json",
                                  workers=1, stats=serial_stats)
        parallel = bench.write_json(parallel_results,
                                    tmp_path / "parallel.json",
                                    workers=2, stats=parallel_stats)
        assert payloads_equal(read_bench_json(str(serial)),
                              read_bench_json(str(parallel)))


class TestAblationBench:
    def test_huge_pages_dominate(self):
        bench = load_bench("bench_ablation_optimizations")
        rows = bench.run()
        by_label = {row[0]: row for row in rows}
        baseline = by_label["all enabled"][1]
        assert by_label["-huge_pages"][1] > 50 * baseline
        assert by_label["all disabled"][1] > by_label["-huge_pages"][1]
        for label in ("-prepare_ahead", "-parallel", "-early_restoration"):
            assert by_label[label][1] > baseline


class TestIOThroughputBench:
    def test_smoke_sweep_shape(self, tmp_path):
        import json

        bench = load_bench("bench_io_throughput")
        results, walls = bench.run(smoke=True)
        assert [entry["pages"] for entry in results["pages"]] == [512, 512]
        dup_heavy, unique = results["pages"]
        assert dup_heavy["dedup_ratio"] > 1.0
        assert dup_heavy["dedup_hits"] > 0
        assert unique["dedup_hits"] == 0
        assert dup_heavy["encoded_bytes"] < unique["encoded_bytes"]
        for entry in results["pram_entries"]:
            assert entry["coalesce_ratio"] > 1.0
        path = bench.write_json(results, tmp_path / "BENCH_io_throughput.json")
        document = json.loads(Path(path).read_text())
        assert document["format"] == "hypertp-bench-io-throughput"

    def test_json_is_deterministic(self, tmp_path):
        # Acceptance bar: byte-identical artifacts across two seeded runs
        # (no wall-clock values may leak into the JSON document).
        bench = load_bench("bench_io_throughput")
        first = Path(bench.write_json(bench.run(smoke=True)[0],
                                      tmp_path / "first.json"))
        second = Path(bench.write_json(bench.run(smoke=True)[0],
                                       tmp_path / "second.json"))
        assert first.read_bytes() == second.read_bytes()
