"""Reconfiguration-plan serialization.

Operators review maintenance plans before executing them; this module
round-trips a :class:`~repro.cluster.plan.ReconfigurationPlan` through a
JSON document (the artifact a change-review ticket would attach), renders
a human-readable summary, and — for the control-plane transport — packs
the same document into a ``repro.io`` framed binary blob
(:func:`encode_plan`/:func:`decode_plan`).  The blob carries an explicit
format-version field and is END-terminated, so version skew, corruption,
truncation and concatenated garbage tails all fail loudly as
:class:`~repro.errors.PlanningError`.
"""

import json
from typing import Dict, Optional

from repro.errors import PlanningError, StateFormatError
from repro.io.frames import FrameReader, FrameWriter, Packer, StreamMeter, Unpacker
from repro.obs import NULL_TRACER
from repro.obs.metrics import MetricsRegistry
from repro.cluster.model import WorkloadKind
from repro.cluster.plan import (
    GroupPlan,
    InPlaceAction,
    MigrationAction,
    ReconfigurationPlan,
)

PLAN_FORMAT = "hypertp-plan"
PLAN_VERSION = 1

#: version of the framed binary plan-blob envelope.
PLAN_BLOB_VERSION = 1

#: frame type tag carrying one plan document.
PLAN_DOC_FRAME = 1


def plan_to_dict(plan: ReconfigurationPlan) -> Dict:
    """JSON-ready representation of a plan."""
    return {
        "format": PLAN_FORMAT,
        "version": PLAN_VERSION,
        "groups": [
            {
                "index": group.group_index,
                "nodes": list(group.nodes),
                "migrations": [
                    {
                        "vm": m.vm_name,
                        "from": m.source,
                        "to": m.destination,
                        "memory_bytes": m.memory_bytes,
                        "workload": m.workload.value,
                    }
                    for m in group.migrations
                ],
                "upgrades": [
                    {
                        "node": u.node_name,
                        "vm_count": u.vm_count,
                        "total_memory_bytes": u.total_memory_bytes,
                    }
                    for u in group.upgrades
                ],
            }
            for group in plan.groups
        ],
    }


def plan_from_dict(document: Dict) -> ReconfigurationPlan:
    """Parse and validate a plan document."""
    if not isinstance(document, dict) or \
            document.get("format") != PLAN_FORMAT:
        raise PlanningError("not a hypertp plan document")
    if document.get("version") != PLAN_VERSION:
        raise PlanningError(
            f"unsupported plan version {document.get('version')!r}"
        )
    plan = ReconfigurationPlan()
    try:
        for entry in document["groups"]:
            group = GroupPlan(group_index=int(entry["index"]),
                              nodes=list(entry["nodes"]))
            for m in entry["migrations"]:
                group.migrations.append(MigrationAction(
                    vm_name=m["vm"],
                    source=m["from"],
                    destination=m["to"],
                    memory_bytes=int(m["memory_bytes"]),
                    workload=WorkloadKind(m["workload"]),
                ))
            for u in entry["upgrades"]:
                group.upgrades.append(InPlaceAction(
                    node_name=u["node"],
                    vm_count=int(u["vm_count"]),
                    total_memory_bytes=int(u["total_memory_bytes"]),
                ))
            plan.groups.append(group)
    except (KeyError, TypeError, ValueError) as exc:
        raise PlanningError(f"malformed plan document: {exc}") from exc
    return plan


def export_plan(plan: ReconfigurationPlan) -> str:
    return json.dumps(plan_to_dict(plan), indent=2, sort_keys=True)


def import_plan(text: str) -> ReconfigurationPlan:
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PlanningError(f"plan is not valid JSON: {exc}") from exc
    return plan_from_dict(document)


def encode_plan(plan: ReconfigurationPlan,
                registry: Optional[MetricsRegistry] = None,
                tracer=NULL_TRACER) -> bytes:
    """Pack a plan into one framed, CRC-checked, versioned binary blob."""
    with tracer.span("plan.encode", "io"):
        text = json.dumps(plan_to_dict(plan), sort_keys=True,
                          separators=(",", ":"))
        data = text.encode()
        packer = Packer()
        packer.u32(PLAN_BLOB_VERSION)
        packer.u32(len(data)).raw(data)
        writer = FrameWriter(StreamMeter("plan", registry))
        writer.frame(PLAN_DOC_FRAME, packer.bytes())
        return writer.finish()


def decode_plan(blob: bytes,
                registry: Optional[MetricsRegistry] = None,
                tracer=NULL_TRACER) -> ReconfigurationPlan:
    """Parse a plan blob; rejects corrupt, truncated or trailing bytes."""
    with tracer.span("plan.decode", "io"):
        try:
            reader = FrameReader(blob, StreamMeter("plan", registry))
            first = reader.read()
            if first is None:
                raise PlanningError("empty plan blob")
            frame_type, payload = first
            if frame_type != PLAN_DOC_FRAME:
                raise PlanningError(f"unexpected plan frame type {frame_type}")
            if reader.read() is not None:
                raise PlanningError("multiple documents in plan blob")
            reader.expect_end()
            body = Unpacker(payload)
            version = body.u32()
            if version != PLAN_BLOB_VERSION:
                raise PlanningError(
                    f"unsupported plan blob version {version}")
            text = body.raw(body.u32()).decode()
            body.expect_end()
        except PlanningError:
            raise
        except StateFormatError as exc:
            raise PlanningError(f"corrupt plan blob: {exc}") from exc
        return import_plan(text)


def summarize_plan(plan: ReconfigurationPlan) -> str:
    """The change-ticket summary an operator signs off on."""
    lines = [
        f"Rolling upgrade: {len(plan.groups)} offline groups, "
        f"{plan.migration_count} migrations, {plan.upgrade_count} "
        f"host micro-reboots.",
    ]
    for group in plan.groups:
        riding = sum(u.vm_count for u in group.upgrades)
        lines.append(
            f"  round {group.group_index}: offline {', '.join(group.nodes)}"
            f" — {len(group.migrations)} VMs evacuate, {riding} ride the "
            f"reboot"
        )
    return "\n".join(lines)
