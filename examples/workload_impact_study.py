#!/usr/bin/env python3
"""What do applications feel during a transplant?  (§5.3, Fig. 11/12)

Runs Redis and MySQL models through both HyperTP mechanisms on a simulated
M1 host (2 vCPU / 8 GB VM, as in the paper) and prints ASCII time series:
InPlaceTP shows a short total blackout, MigrationTP a long shallow dip.
"""

from repro import HyperTP, HypervisorKind, M1_SPEC, MigrationTP, SimClock
from repro.bench import make_host_pair, make_xen_host
from repro.workloads import (
    MySQLWorkload,
    RedisWorkload,
    timeline_for_inplace,
    timeline_for_migration,
)

TRIGGER_T = 50.0


def sparkline(series, t0, t1, step=5, width_scale=30):
    """Render a metric series as one ASCII bar per `step` seconds."""
    peak = max(series.values) or 1.0
    lines = []
    t = t0
    while t < t1:
        window = [v for ts, v in zip(series.times, series.values)
                  if t <= ts < t + step]
        value = sum(window) / len(window) if window else 0.0
        bar = "#" * int(width_scale * value / peak)
        lines.append(f"  t={t:>5.0f}s |{bar:<{width_scale}}| "
                     f"{value:,.0f} {series.unit}")
        t += step
    return "\n".join(lines)


def redis_through_inplace():
    machine = make_xen_host(M1_SPEC, vm_count=1, vcpus=2, memory_gib=8.0)
    report = HyperTP().inplace(machine, HypervisorKind.KVM, SimClock())
    timeline = timeline_for_inplace(report, TRIGGER_T, HypervisorKind.XEN,
                                    HypervisorKind.KVM)
    series = RedisWorkload().run(120.0, timeline)
    print("Redis QPS through InPlaceTP "
          f"(downtime {report.downtime_s:.1f} s + NIC {report.network_s:.1f} s):")
    print(sparkline(series, 30, 90))
    z0, z1 = series.zero_span()
    print(f"  => total service interruption {z1 - z0 + 1:.0f} s; QPS then "
          f"jumps ~37 % on KVM (paper: the same)\n")


def mysql_through_migration():
    source, destination, fabric = make_host_pair(
        M1_SPEC, HypervisorKind.KVM, vcpus=2, memory_gib=8.0,
    )
    domain = next(iter(source.hypervisor.domains.values()))
    report = MigrationTP(fabric, source, destination).migrate(
        domain, dirty_rate_bytes_s=10 << 20,
    )
    timeline = timeline_for_migration(report, TRIGGER_T, HypervisorKind.XEN,
                                      HypervisorKind.KVM,
                                      precopy_throughput_factor=0.32)
    workload = MySQLWorkload()
    qps = workload.run(200.0, timeline)
    latency = workload.run_latency(200.0, timeline)
    print(f"MySQL through MigrationTP (pre-copy {report.precopy_s:.0f} s, "
          f"downtime {report.downtime_s * 1000:.0f} ms):")
    print(sparkline(qps, 30, 170, step=10))
    mid = int(TRIGGER_T + report.precopy_s / 2)
    print(f"  => during the copy: QPS -68 %, latency "
          f"{latency.values[mid]:.0f} ms vs {latency.values[10]:.0f} ms "
          f"baseline (+252 %), no blackout (paper: the same)")


def main():
    redis_through_inplace()
    mysql_through_migration()


if __name__ == "__main__":
    main()
