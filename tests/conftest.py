"""Shared fixtures for the test suite."""

import pytest

from repro.guest.devices import KVM_IOAPIC_PINS, make_default_platform
from repro.guest.vm import VMConfig
from repro.hw.machine import M1_SPEC, M2_SPEC, Machine
from repro.hw.network import Fabric
from repro.hypervisors import KVMHypervisor, XenHypervisor

GIB = 1024 ** 3


@pytest.fixture
def m1():
    return Machine(M1_SPEC)


@pytest.fixture
def m2():
    return Machine(M2_SPEC)


@pytest.fixture
def xen_host(m1):
    """An M1 machine running Xen with one 1 vCPU / 1 GB guest."""
    xen = XenHypervisor()
    xen.boot(m1)
    xen.create_vm(VMConfig("guest0", vcpus=1, memory_bytes=GIB))
    return m1


@pytest.fixture
def xen_host_factory():
    def build(vm_count=1, vcpus=1, memory_gib=1.0, spec=M1_SPEC, name=None,
              inplace_compatible=True):
        machine = Machine(spec, name=name)
        xen = XenHypervisor()
        xen.boot(machine)
        for i in range(vm_count):
            xen.create_vm(VMConfig(
                name=f"{machine.name}-vm{i}",
                vcpus=vcpus,
                memory_bytes=int(memory_gib * GIB),
                seed=i,
                inplace_compatible=inplace_compatible,
            ))
        return machine
    return build


@pytest.fixture
def kvm_host_factory():
    def build(vm_count=0, vcpus=1, memory_gib=1.0, spec=M1_SPEC, name=None):
        machine = Machine(spec, name=name)
        kvm = KVMHypervisor()
        kvm.boot(machine)
        for i in range(vm_count):
            domain = kvm.create_vm(VMConfig(
                name=f"{machine.name}-vm{i}",
                vcpus=vcpus,
                memory_bytes=int(memory_gib * GIB),
                seed=i,
            ))
            domain.vm.platform = make_default_platform(
                vcpus, ioapic_pins=KVM_IOAPIC_PINS, seed=i,
            )
        return machine
    return build


@pytest.fixture
def fabric():
    return Fabric()
