"""The Xen-like type-I hypervisor.

Xen is a standalone hypervisor kernel that boots an administration VM (dom0)
on top of itself — which is why InPlaceTP *into* Xen is slower than into KVM:
the micro-reboot must bring up two kernels (§5.2.2, Fig. 10).  Boot-path
timing lives in the cost model (:mod:`repro.core.timings`); this class models
structure and state.
"""

from typing import Dict

from repro.guest.vm import VirtualMachine
from repro.hypervisors.base import (
    Domain,
    Hypervisor,
    HypervisorKind,
    HypervisorType,
    NestedPageTable,
)
from repro.hypervisors.xen import formats
from repro.hypervisors.xen.events import EventChannelTable, GrantTable
from repro.hypervisors.xen.npt import build_p2m
from repro.hypervisors.xen.scheduler import CreditScheduler
from repro.hypervisors.xen.toolstack import XenToolstack

# Standard VIRQ numbers (subset).
VIRQ_TIMER = 0
VIRQ_DEBUG = 1


class XenHypervisor(Hypervisor):
    """Xen 4.12-like HVM hypervisor with dom0 and a credit scheduler."""

    kind = HypervisorKind.XEN
    hv_type = HypervisorType.TYPE_1
    # Xen hypervisor heap + dom0 kernel working set (HV State).
    hv_state_bytes = 96 << 20

    #: number of kernels the micro-reboot path must start (Xen + dom0)
    boot_kernel_count = 2

    def __init__(self):
        super().__init__()
        self.scheduler = CreditScheduler(pcpus=1)
        self.toolstack = XenToolstack(self)
        self.dom0_online = False
        # PV plumbing: event channels (host-wide) and per-domain grant
        # tables.  HVM guests use these through their PV drivers; both are
        # Xen-only VM_i State, torn down (not translated) at transplant.
        self.event_channels = EventChannelTable()
        self.grant_tables: Dict[int, GrantTable] = {}

    # -- lifecycle ---------------------------------------------------------

    def boot(self, machine) -> None:
        super().boot(machine)
        self.scheduler = CreditScheduler(pcpus=machine.spec.threads)
        self.dom0_online = True

    def shutdown(self) -> None:
        self.dom0_online = False
        super().shutdown()

    # -- NPT -----------------------------------------------------------------

    def build_npt(self, vm: VirtualMachine) -> NestedPageTable:
        return build_p2m(vm)

    # -- platform state --------------------------------------------------------

    def save_platform_state(self, domain: Domain) -> bytes:
        blob = formats.encode_hvm_context(domain.vm.vcpus, domain.vm.platform)
        domain.native_state_blob = blob
        return blob

    def load_platform_state(self, domain: Domain, blob: bytes) -> None:
        vcpus, platform = formats.decode_hvm_context(blob)
        domain.vm.vcpus = vcpus
        domain.vm.platform = platform
        domain.native_state_blob = blob

    # -- VM management state -----------------------------------------------------

    def _on_domain_added(self, domain: Domain) -> None:
        self.scheduler.add_domain(domain.domid, domain.vm.config.vcpus)
        # Every HVM guest gets the standard PV plumbing: a xenstore and a
        # console channel toward dom0 (domid 0), a timer VIRQ, and a grant
        # table its PV drivers will populate.
        self.event_channels.alloc_unbound(domain.domid, remote_domid=0)
        self.event_channels.alloc_unbound(domain.domid, remote_domid=0)
        self.event_channels.bind_virq(domain.domid, VIRQ_TIMER)
        self.grant_tables[domain.domid] = GrantTable(domain.domid)

    def _on_domain_removed(self, domain: Domain) -> None:
        self.scheduler.remove_domain(domain.domid)
        # PV teardown: backends unmap whatever they still hold, grants are
        # revoked, channels closed.  The guest's PV frontends re-create
        # their transport on the target hypervisor (unplug/rescan, §4.2.3).
        table = self.grant_tables.pop(domain.domid, None)
        if table is not None:
            table.force_unmap_all()
            table.revoke_all()
        self.event_channels.close_domain(domain.domid)

    def rebuild_management_state(self) -> None:
        """Reconstruct scheduler queues from VM_i states (post-transplant)."""
        self.scheduler.rebuild(self.domains.values())

    def scheduler_report(self) -> Dict[str, object]:
        return self.scheduler.report()
