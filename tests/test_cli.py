"""Tests for the hypertp CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_hypervisor_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["inplace", "--target", "esxi"])

    def test_unknown_machine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["inplace", "--machine", "M9"])


class TestInplaceCommand:
    def test_default_run(self, capsys):
        assert main(["inplace"]) == 0
        out = capsys.readouterr().out
        assert "downtime" in out
        assert "guests intact: True" in out

    def test_same_source_target_fails(self, capsys):
        assert main(["inplace", "--source", "kvm", "--target", "kvm"]) == 2

    def test_kvm_to_xen_direction(self, capsys):
        assert main(["inplace", "--source", "kvm", "--target", "xen"]) == 0
        out = capsys.readouterr().out
        assert "kvm->xen" in out

    def test_nova_source(self, capsys):
        assert main(["inplace", "--source", "nova", "--target", "kvm"]) == 0

    def test_ablation_flags(self, capsys):
        assert main(["inplace", "--no-huge-pages", "--no-parallel",
                     "--no-prepare-ahead", "--vms", "2"]) == 0


class TestMigrateCommand:
    def test_migration_tp(self, capsys):
        assert main(["migrate", "--dest", "kvm"]) == 0
        out = capsys.readouterr().out
        assert "MigrationTP" in out
        assert "guest intact    : True" in out

    def test_xen_baseline(self, capsys):
        assert main(["migrate", "--dest", "xen"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out

    def test_busy_guest(self, capsys):
        assert main(["migrate", "--dirty-mb-s", "48"]) == 0
        out = capsys.readouterr().out
        assert "pre-copy rounds" in out


class TestAdviseCommand:
    def test_safe_target_found(self, capsys):
        assert main(["advise", "CVE-2016-6258"]) == 0
        out = capsys.readouterr().out
        assert "xen -> kvm" in out

    def test_no_safe_target_exit_code(self, capsys):
        assert main(["advise", "CVE-2015-3456"]) == 1
        out = capsys.readouterr().out
        assert "NO SAFE TARGET" in out

    def test_bigger_pool_saves_it(self, capsys):
        assert main(["advise", "CVE-2015-3456",
                     "--pool", "xen,kvm,nova"]) == 0
        out = capsys.readouterr().out
        assert "xen -> nova" in out

    def test_medium_flaw_needs_nothing(self, capsys):
        assert main(["advise", "CVE-2015-8104"]) == 0
        out = capsys.readouterr().out
        assert "no transplant needed" in out


class TestReportingCommands:
    def test_vulns_table(self, capsys):
        assert main(["vulns"]) == 0
        out = capsys.readouterr().out
        assert "2015" in out and "Total" in out

    def test_cluster_sweep(self, capsys):
        assert main(["cluster", "--fractions", "0,0.8"]) == 0
        out = capsys.readouterr().out
        assert "migrations" in out

    def test_tcb(self, capsys):
        assert main(["tcb"]) == 0
        out = capsys.readouterr().out
        assert "8.5 KLOC" in out


class TestFleetCommand:
    def test_default_run(self, capsys):
        assert main(["fleet", "--hosts", "4", "--vms-per-host", "4",
                     "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "transplant xen -> kvm" in out
        assert "remediated : 4/4 hosts" in out
        assert "p50" in out and "p99" in out and "max" in out

    def test_sequential_groups(self, capsys):
        assert main(["fleet", "--hosts", "4", "--vms-per-host", "4",
                     "--sequential-groups", "--concurrency", "0"]) == 0
        out = capsys.readouterr().out
        assert "remediated : 4/4 hosts" in out

    def test_fail_rate_still_terminates(self, capsys):
        assert main(["fleet", "--hosts", "4", "--vms-per-host", "4",
                     "--fail-rate", "0.3", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "rolled back" in out

    def test_json_export(self, tmp_path, capsys):
        import json

        path = tmp_path / "fleet.json"
        assert main(["fleet", "--hosts", "4", "--vms-per-host", "4",
                     "--json", str(path)]) == 0
        document = json.loads(path.read_text())
        assert document["format"] == "hypertp-fleet-metrics"
        assert document["campaign"]["hosts"] == 4

    def test_medium_cve_rejected(self, capsys):
        assert main(["fleet", "--hosts", "4", "--vms-per-host", "4",
                     "--cve", "CVE-2015-8104"]) == 2


class TestTraceFlag:
    def test_trace_file_written(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.json"
        assert main(["inplace", "--trace", str(path)]) == 0
        document = json.loads(path.read_text())
        names = {e["name"] for e in document["traceEvents"]}
        assert {"PRAM", "Reboot", "VMs paused"} <= names


class TestTraceCommand:
    def run_trace(self, capsys, *extra):
        assert main(["trace", "--hosts", "4", "--vms-per-host", "4",
                     "--seed", "7", *extra]) == 0
        return capsys.readouterr()

    def test_emits_valid_perfetto_json(self, capsys):
        import json

        captured = self.run_trace(capsys)
        document = json.loads(captured.out)
        events = document["traceEvents"]
        kinds = {e["ph"] for e in events}
        assert kinds == {"M", "X"}
        processes = {e["args"]["name"] for e in events
                     if e["name"] == "process_name"}
        # One track per host plus the fleet summary track.
        assert processes == {"fleet", "node00", "node01", "node02", "node03"}

    def test_byte_identical_per_seed(self, capsys):
        first = self.run_trace(capsys).out
        second = self.run_trace(capsys).out
        assert first == second

    def test_out_and_metrics_files(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        self.run_trace(capsys, "--out", str(trace_path),
                       "--metrics", str(metrics_path))
        assert json.loads(trace_path.read_text())["traceEvents"]
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["format"] == "hypertp-metrics"
        assert snapshot["metrics"]["fleet_hosts_done_total"]["value"] == 4.0

    def test_medium_cve_rejected(self, capsys):
        assert main(["trace", "--hosts", "4",
                     "--cve", "CVE-2015-8104"]) == 2


class TestSentinelCommand:
    ARGS = ["sentinel", "--hosts", "4", "--vms-per-host", "4",
            "--limit", "30", "--seed", "11"]

    def test_default_run(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "Sentinel replay" in out
        assert "responses" in out
        assert "windows" in out

    def test_byte_identical_per_seed(self, capsys):
        assert main(self.ARGS) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS) == 0
        assert capsys.readouterr().out == first

    def test_workers_output_identical(self, tmp_path, capsys):
        import filecmp

        serial = tmp_path / "serial.json"
        pooled = tmp_path / "pooled.json"
        assert main([*self.ARGS, "--json", str(serial)]) == 0
        assert main([*self.ARGS, "--workers", "2",
                     "--json", str(pooled)]) == 0
        assert filecmp.cmp(serial, pooled, shallow=False)

    def test_json_report_written(self, tmp_path, capsys):
        import json

        path = tmp_path / "sentinel.json"
        assert main([*self.ARGS, "--json", str(path)]) == 0
        document = json.loads(path.read_text())
        assert document["format"] == "hypertp-sentinel-report"
        assert document["inventory"]["open_cves"] == []

    def test_trace_and_metrics_files(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        assert main([*self.ARGS, "--trace", str(trace_path),
                     "--metrics", str(metrics_path)]) == 0
        trace = json.loads(trace_path.read_text())
        assert any(e.get("name") == "feed replay"
                   for e in trace["traceEvents"])
        snapshot = json.loads(metrics_path.read_text())
        assert "sentinel_disclosures_total" in snapshot["metrics"]

    def test_journal_dir_runs_inline(self, tmp_path, capsys):
        journal_dir = tmp_path / "journals"
        assert main([*self.ARGS, "--journal-dir", str(journal_dir)]) == 0
        assert any(p.suffix == ".journal" for p in journal_dir.iterdir())

    def test_journal_dir_rejects_workers(self, tmp_path, capsys):
        assert main([*self.ARGS, "--journal-dir", str(tmp_path / "j"),
                     "--workers", "2"]) == 2

    def test_bad_pool_rejected(self, capsys):
        assert main(["sentinel", "--pool", "kvm", "--current", "xen"]) == 2
