"""Property tests: VM Management State is always rebuildable (Fig. 2).

The memory-separation design hinges on scheduler queues being *derived*
data: for any domain population, tearing the queues down and rebuilding
them from the VM_i states must reproduce an equivalent scheduling state —
for all three hypervisors' schedulers.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypervisors.kvm.scheduler import CFSScheduler
from repro.hypervisors.nova.hypervisor import PriorityRoundRobin
from repro.hypervisors.xen.scheduler import CreditScheduler


class FakeDomain:
    """Just enough shape for scheduler rebuild()."""

    def __init__(self, domid, vcpus):
        self.domid = domid

        class _Config:
            def __init__(self, count):
                self.vcpus = count

        class _VM:
            def __init__(self, count):
                self.config = _Config(count)

        self.vm = _VM(vcpus)


populations = st.lists(
    st.integers(min_value=1, max_value=8),  # vCPUs per domain
    min_size=0, max_size=12,
)

scheduler_factories = st.sampled_from([
    lambda: CreditScheduler(pcpus=8),
    lambda: CFSScheduler(cpus=8),
    lambda: PriorityRoundRobin(cpus=8),
])


@given(populations, scheduler_factories)
@settings(max_examples=60)
def test_rebuild_preserves_queued_vcpus(vcpu_counts, factory):
    scheduler = factory()
    domains = [FakeDomain(i + 1, count)
               for i, count in enumerate(vcpu_counts)]
    for domain in domains:
        scheduler.add_domain(domain.domid, domain.vm.config.vcpus)
    before = scheduler.queued_vcpus()
    scheduler.rebuild(domains)
    assert scheduler.queued_vcpus() == before == sum(vcpu_counts)


@given(populations, scheduler_factories,
       st.integers(min_value=0, max_value=11))
@settings(max_examples=60)
def test_remove_then_rebuild_consistent(vcpu_counts, factory, victim_index):
    scheduler = factory()
    domains = [FakeDomain(i + 1, count)
               for i, count in enumerate(vcpu_counts)]
    for domain in domains:
        scheduler.add_domain(domain.domid, domain.vm.config.vcpus)
    if domains:
        victim = domains[victim_index % len(domains)]
        scheduler.remove_domain(victim.domid)
        domains.remove(victim)
    scheduler.rebuild(domains)
    assert scheduler.queued_vcpus() == sum(d.vm.config.vcpus
                                           for d in domains)
    report = scheduler.report()
    assert sorted(report["domains"]) == sorted(d.domid for d in domains)


@given(populations, scheduler_factories)
@settings(max_examples=40)
def test_rebuild_is_idempotent(vcpu_counts, factory):
    scheduler = factory()
    domains = [FakeDomain(i + 1, count)
               for i, count in enumerate(vcpu_counts)]
    for domain in domains:
        scheduler.add_domain(domain.domid, domain.vm.config.vcpus)
    scheduler.rebuild(domains)
    first = scheduler.report()
    scheduler.rebuild(domains)
    assert scheduler.report() == first
