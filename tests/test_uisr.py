"""Tests for the UISR format, codec and converter registry."""

import pytest

from repro.errors import UISRError
from repro.guest.devices import make_default_platform
from repro.guest.vcpu import make_boot_vcpu
from repro.hypervisors.base import HypervisorKind
from repro.core.uisr import (
    UISRMemoryChunk,
    UISRMemoryMap,
    UISRPlatform,
    UISRVCpu,
    UISRVMState,
    decode_uisr,
    default_registry,
    encode_uisr,
    uisr_size,
)
from repro.core.uisr.format import UISR_VERSION


def make_uisr(vcpus=2, by_reference=True, name="vm0", seed=0):
    if by_reference:
        memory_map = UISRMemoryMap(page_size=2 << 20, total_bytes=1 << 30,
                                   pram_file=name)
    else:
        memory_map = UISRMemoryMap(
            page_size=2 << 20, total_bytes=1 << 30,
            chunks=[UISRMemoryChunk(gfn=i, mfn=100 + i, order=9)
                    for i in range(4)],
        )
    return UISRVMState(
        version=UISR_VERSION,
        vm_name=name,
        vcpu_count=vcpus,
        memory_bytes=1 << 30,
        source_hypervisor="xen",
        vcpus=[UISRVCpu(make_boot_vcpu(i, seed=seed)) for i in range(vcpus)],
        platform=UISRPlatform(make_default_platform(vcpus, seed=seed)),
        memory_map=memory_map,
    )


class TestFormat:
    def test_vcpu_count_must_match_records(self):
        state = make_uisr(vcpus=2)
        with pytest.raises(UISRError):
            UISRVMState(
                version=UISR_VERSION, vm_name="x", vcpu_count=3,
                memory_bytes=1 << 30, source_hypervisor="xen",
                vcpus=state.vcpus, platform=state.platform,
                memory_map=state.memory_map,
            )

    def test_unsupported_version_rejected(self):
        state = make_uisr()
        with pytest.raises(UISRError):
            UISRVMState(
                version=99, vm_name="x", vcpu_count=2,
                memory_bytes=1 << 30, source_hypervisor="xen",
                vcpus=state.vcpus, platform=state.platform,
                memory_map=state.memory_map,
            )

    def test_memory_map_needs_exactly_one_representation(self):
        with pytest.raises(UISRError):
            UISRMemoryMap(page_size=4096, total_bytes=1 << 20)
        with pytest.raises(UISRError):
            UISRMemoryMap(
                page_size=4096, total_bytes=1 << 20, pram_file="f",
                chunks=[UISRMemoryChunk(gfn=0, mfn=1, order=0)],
            )

    def test_negative_chunk_rejected(self):
        with pytest.raises(UISRError):
            UISRMemoryChunk(gfn=-1, mfn=0, order=0)


class TestCodec:
    def test_roundtrip_by_reference(self):
        state = make_uisr(by_reference=True)
        decoded = decode_uisr(encode_uisr(state))
        assert decoded.architectural_view() == state.architectural_view()
        assert decoded.memory_map.pram_file == state.memory_map.pram_file
        assert decoded.source_hypervisor == "xen"

    def test_roundtrip_by_value(self):
        state = make_uisr(by_reference=False)
        decoded = decode_uisr(encode_uisr(state))
        assert decoded.memory_map.chunks == state.memory_map.chunks

    def test_roundtrip_with_devices(self):
        from repro.core.uisr import UISRDeviceState

        state = make_uisr()
        state.devices.append(UISRDeviceState(
            name="net0", device_class="NetworkDriver",
            strategy="unplug-rescan", payload=b"net0",
        ))
        decoded = decode_uisr(encode_uisr(state))
        assert decoded.devices[0].name == "net0"
        assert decoded.devices[0].payload == b"net0"

    def test_corrupt_magic_rejected(self):
        blob = bytearray(encode_uisr(make_uisr()))
        blob[0] ^= 0xFF
        with pytest.raises(UISRError):
            decode_uisr(bytes(blob))

    def test_truncated_blob_rejected(self):
        blob = encode_uisr(make_uisr())
        from repro.errors import StateFormatError

        with pytest.raises((UISRError, StateFormatError)):
            decode_uisr(blob[: len(blob) // 2])

    def test_trailing_garbage_rejected(self):
        from repro.errors import StateFormatError

        blob = encode_uisr(make_uisr())
        with pytest.raises((UISRError, StateFormatError)):
            decode_uisr(blob + b"xx")

    def test_size_grows_with_vcpus(self):
        sizes = [uisr_size(make_uisr(vcpus=n)) for n in (1, 2, 4, 8)]
        assert sizes == sorted(sizes)
        # Fig. 14: per-vCPU slope of a few KB.
        slope = (sizes[-1] - sizes[0]) / 7
        assert 1_000 < slope < 8_000

    def test_single_vcpu_size_order_of_magnitude(self):
        # Paper: ~5 KB for 1 vCPU.  Same order of magnitude expected.
        assert 2_000 < uisr_size(make_uisr(vcpus=1)) < 12_000


class TestRegistry:
    def test_default_registry_supports_both(self):
        registry = default_registry()
        kinds = registry.supported_kinds()
        assert HypervisorKind.XEN in kinds
        assert HypervisorKind.KVM in kinds

    def test_unknown_kind_raises(self):
        from repro.core.uisr.registry import ConverterRegistry

        empty = ConverterRegistry()
        with pytest.raises(UISRError):
            empty.to_uisr(HypervisorKind.XEN)
        with pytest.raises(UISRError):
            empty.from_uisr(HypervisorKind.KVM)

    def test_registration_roundtrip(self):
        from repro.core.uisr.registry import ConverterRegistry

        registry = ConverterRegistry()
        to_fn = lambda *a, **k: None
        from_fn = lambda *a, **k: None
        registry.register(HypervisorKind.XEN, to_fn, from_fn)
        assert registry.to_uisr(HypervisorKind.XEN) is to_fn
        assert registry.from_uisr(HypervisorKind.XEN) is from_fn
